module Schema = Smg_relational.Schema
module Value = Smg_relational.Value

(* Bindings: variable -> list of "alias.column" sites; constants collect
   equality conditions directly. *)
let analyze schema (body : Atom.t list) =
  let bindings = Hashtbl.create 16 in
  let conditions = ref [] in
  List.iteri
    (fun i (a : Atom.t) ->
      let alias = Printf.sprintf "a%d" i in
      let t = Schema.find_table_exn schema a.Atom.pred in
      List.iteri
        (fun j term ->
          let site = alias ^ "." ^ List.nth (Schema.column_names t) j in
          match term with
          | Atom.Var x ->
              Hashtbl.replace bindings x
                (site :: Option.value ~default:[] (Hashtbl.find_opt bindings x))
          | Atom.Cst c ->
              conditions :=
                Printf.sprintf "%s = %s" site
                  (match c with
                  | Value.VInt k -> string_of_int k
                  | Value.VFloat f -> string_of_float f
                  | Value.VBool b -> if b then "TRUE" else "FALSE"
                  | Value.VString s -> "'" ^ s ^ "'"
                  | Value.VNull _ -> "NULL")
                :: !conditions)
        a.Atom.args)
    body;
  (* join equalities: each variable's sites pairwise-chained *)
  Hashtbl.iter
    (fun _ sites ->
      match List.rev sites with
      | first :: rest ->
          List.iter
            (fun s -> conditions := Printf.sprintf "%s = %s" first s :: !conditions)
            rest
      | [] -> ())
    bindings;
  (bindings, List.rev !conditions)

let site_of bindings x =
  match Hashtbl.find_opt bindings x with
  | Some (s :: _) -> s
  | Some [] | None ->
      invalid_arg (Printf.sprintf "sql: unsafe head variable %s" x)

let select_of_query schema (q : Query.t) =
  let bindings, conditions = analyze schema q.Query.body in
  let select_items =
    List.mapi
      (fun i term ->
        match term with
        | Atom.Var x -> Printf.sprintf "%s AS v%d" (site_of bindings x) i
        | Atom.Cst (Value.VString s) -> Printf.sprintf "'%s' AS v%d" s i
        | Atom.Cst (Value.VInt k) -> Printf.sprintf "%d AS v%d" k i
        | Atom.Cst _ -> invalid_arg "sql: unsupported constant head")
      q.Query.head
  in
  let from_items =
    List.mapi
      (fun i (a : Atom.t) -> Printf.sprintf "%s AS a%d" a.Atom.pred i)
      q.Query.body
  in
  let where =
    match conditions with
    | [] -> ""
    | cs -> "\nWHERE " ^ String.concat "\n  AND " cs
  in
  Printf.sprintf "SELECT DISTINCT %s\nFROM %s%s"
    (String.concat ", " select_items)
    (String.concat ", " from_items)
    where

let insert_of_mapping ~source ~target (m : Mapping.t) =
  let tgd = Mapping.to_tgd m in
  let bindings, conditions = analyze source tgd.Dependency.lhs in
  let universal = Dependency.universal_vars tgd in
  List.map
    (fun (rhs : Atom.t) ->
      let t = Schema.find_table_exn target rhs.Atom.pred in
      let cols = Schema.column_names t in
      let select_items =
        List.map2
          (fun col term ->
            match term with
            | Atom.Var x when List.mem x universal ->
                Printf.sprintf "%s AS %s" (site_of bindings x) col
            | Atom.Var x -> Printf.sprintf "NULL AS %s /* ∃%s */" col x
            | Atom.Cst (Value.VString s) -> Printf.sprintf "'%s' AS %s" s col
            | Atom.Cst (Value.VInt k) -> Printf.sprintf "%d AS %s" k col
            | Atom.Cst _ -> invalid_arg "sql: unsupported constant")
          cols rhs.Atom.args
      in
      let from_items =
        List.mapi
          (fun i (a : Atom.t) -> Printf.sprintf "%s AS a%d" a.Atom.pred i)
          tgd.Dependency.lhs
      in
      let where =
        match conditions with
        | [] -> ""
        | cs -> "\nWHERE " ^ String.concat "\n  AND " cs
      in
      Printf.sprintf "INSERT INTO %s (%s)\nSELECT DISTINCT %s\nFROM %s%s;"
        rhs.Atom.pred (String.concat ", " cols)
        (String.concat ", " select_items)
        (String.concat ", " from_items)
        where)
    tgd.Dependency.rhs
