(** SQL rendering of conjunctive queries and mappings.

    Discovered mapping expressions become executable SQL: the source
    query renders as a [SELECT] over aliased tables with the join
    conditions in [WHERE], and a whole mapping renders as an
    [INSERT INTO target_table (...) SELECT ...] — columns of the target
    not bound by the mapping receive [NULL] (the SQL stand-in for the
    tgd's existential variables). *)

val select_of_query :
  Smg_relational.Schema.t -> Query.t -> string
(** [SELECT DISTINCT <head> FROM t1 AS a1, ... WHERE <joins and
    constants>]. Head variables are exposed with [AS vN] aliases.
    @raise Invalid_argument on unsafe heads or unknown tables. *)

val insert_of_mapping :
  source:Smg_relational.Schema.t ->
  target:Smg_relational.Schema.t ->
  Mapping.t ->
  string list
(** One [INSERT ... SELECT] per target atom of the mapping. Target
    columns carrying a universal variable take the corresponding source
    expression; target columns carrying existential variables become
    [NULL] with a comment naming the variable (a database with
    generated keys would replace these). *)
