module Value = Smg_relational.Value

type term = Var of string | Cst of Value.t

type t = { pred : string; args : term list }

module SMap = Map.Make (String)

module Subst = struct
  type nonrec t = term SMap.t

  let empty = SMap.empty
  let find s x = SMap.find_opt x s
  let bind s x t = SMap.add x t s
  let bindings s = SMap.bindings s
  let of_list l = List.fold_left (fun m (k, v) -> SMap.add k v m) SMap.empty l
end

let v x = Var x
let c x = Cst x
let str s = Cst (Value.VString s)
let atom pred args = { pred; args }

let apply_term s = function
  | Var x as t -> ( match Subst.find s x with Some t' -> t' | None -> t)
  | Cst _ as t -> t

let apply s a = { a with args = List.map (apply_term s) a.args }
let term_vars = function Var x -> [ x ] | Cst _ -> []
let vars a = List.concat_map term_vars a.args

let vars_of_list atoms =
  let seen = Hashtbl.create 16 in
  List.concat_map vars atoms
  |> List.filter (fun x ->
         if Hashtbl.mem seen x then false
         else begin
           Hashtbl.replace seen x ();
           true
         end)

let equal_term a b =
  match (a, b) with
  | Var x, Var y -> String.equal x y
  | Cst x, Cst y -> Value.equal x y
  | (Var _ | Cst _), _ -> false

let equal a b =
  String.equal a.pred b.pred
  && List.length a.args = List.length b.args
  && List.for_all2 equal_term a.args b.args

let compare = Stdlib.compare

let pp_term ppf = function
  | Var x -> Fmt.string ppf x
  | Cst v -> Value.pp ppf v

let pp ppf a =
  Fmt.pf ppf "%s(%a)" a.pred (Fmt.list ~sep:Fmt.comma pp_term) a.args
