lib/cq/mapping.ml: Atom Chase Dependency Fmt Hashtbl List Printf Query Smg_relational Stdlib String
