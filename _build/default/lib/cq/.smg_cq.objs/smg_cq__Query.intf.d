lib/cq/query.mli: Atom Format Smg_relational
