lib/cq/atom.mli: Format Smg_relational
