lib/cq/atom.ml: Fmt Hashtbl List Map Smg_relational Stdlib String
