lib/cq/dependency.mli: Atom Format Smg_relational
