lib/cq/query.ml: Array Atom Fmt Hashtbl List Map Option Printf Smg_relational String
