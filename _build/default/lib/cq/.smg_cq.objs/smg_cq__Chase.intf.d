lib/cq/chase.mli: Dependency Smg_relational
