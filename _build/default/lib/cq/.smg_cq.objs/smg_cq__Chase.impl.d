lib/cq/chase.ml: Array Atom Dependency List Printf Query Smg_relational String
