lib/cq/sql.ml: Atom Dependency Hashtbl List Mapping Option Printf Query Smg_relational String
