lib/cq/dependency.ml: Atom Fmt List Printf Query Smg_relational
