lib/cq/mapping.mli: Dependency Format Query Smg_relational
