lib/cq/sql.mli: Mapping Query Smg_relational
