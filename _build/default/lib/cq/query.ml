module Value = Smg_relational.Value
module Instance = Smg_relational.Instance

type t = { name : string; head : Atom.term list; body : Atom.t list }

let make ?(name = "q") ~head body = { name; head; body }

let dedup xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.replace seen x ();
        true
      end)
    xs

let head_vars q = dedup (List.concat_map Atom.term_vars q.head)
let body_vars q = Atom.vars_of_list q.body
let all_vars q = dedup (head_vars q @ body_vars q)

let rename_apart ~suffix q =
  let ren = function
    | Atom.Var x -> Atom.Var (x ^ suffix)
    | Atom.Cst _ as t -> t
  in
  {
    q with
    head = List.map ren q.head;
    body = List.map (fun a -> { a with Atom.args = List.map ren a.Atom.args }) q.body;
  }

(* Homomorphism search: map [atoms] (flexible) into [rigid] facts whose
   variables act as constants. [init] pre-binds variables. *)
let matches_into_init ?(init = Atom.Subst.empty) ~rigid atoms =
  let by_pred = Hashtbl.create 16 in
  List.iter (fun (a : Atom.t) -> Hashtbl.add by_pred a.pred a) rigid;
  let rec unify_args subst qargs fargs =
    match (qargs, fargs) with
    | [], [] -> Some subst
    | qa :: qrest, fa :: frest -> (
        match qa with
        | Atom.Cst _ ->
            if Atom.equal_term qa fa then unify_args subst qrest frest
            else None
        | Atom.Var x -> (
            match Atom.Subst.find subst x with
            | Some bound ->
                if Atom.equal_term bound fa then unify_args subst qrest frest
                else None
            | None -> unify_args (Atom.Subst.bind subst x fa) qrest frest))
    | _, _ -> None
  in
  let rec go subst = function
    | [] -> [ subst ]
    | (a : Atom.t) :: rest ->
        Hashtbl.find_all by_pred a.pred
        |> List.concat_map (fun (f : Atom.t) ->
               match unify_args subst a.args f.args with
               | Some subst' -> go subst' rest
               | None -> [])
  in
  go init atoms

let matches_into ~rigid atoms = matches_into_init ~rigid atoms

let homomorphism ~from_ ~to_ =
  if List.length from_.head <> List.length to_.head then None
  else
    (* Seed the substitution with the head constraint. *)
    let seed =
      List.fold_left2
        (fun acc fh th ->
          match acc with
          | None -> None
          | Some s -> (
              match fh with
              | Atom.Cst _ -> if Atom.equal_term fh th then acc else None
              | Atom.Var x -> (
                  match Atom.Subst.find s x with
                  | Some bound ->
                      if Atom.equal_term bound th then acc else None
                  | None -> Some (Atom.Subst.bind s x th))))
        (Some Atom.Subst.empty) from_.head to_.head
    in
    match seed with
    | None -> None
    | Some seed -> (
        match matches_into_init ~init:seed ~rigid:to_.body from_.body with
        | [] -> None
        | s :: _ -> Some s)

let contained_in q1 q2 = Option.is_some (homomorphism ~from_:q2 ~to_:q1)
let equivalent q1 q2 = contained_in q1 q2 && contained_in q2 q1

let minimize q =
  (* Fold the query onto a subquery: drop an atom if a homomorphism from
     the full query into the reduced one (fixing the head) exists. *)
  let head_identity q' =
    (* hom from q (full body) to q' (reduced) with identical heads *)
    Option.is_some (homomorphism ~from_:q ~to_:q')
  in
  let rec shrink body =
    let try_drop i =
      let body' = List.filteri (fun j _ -> j <> i) body in
      let q' = { q with body = body' } in
      if head_identity q' then Some body' else None
    in
    let rec first i =
      if i >= List.length body then None
      else match try_drop i with Some b -> Some b | None -> first (i + 1)
    in
    match first 0 with None -> body | Some b -> shrink b
  in
  { q with body = shrink q.body }

let ground_matches inst atoms =
  let module SM = Map.Make (String) in
  let rec go env = function
    | [] -> [ env ]
    | (a : Atom.t) :: rest -> (
        match Instance.relation inst a.pred with
        | None -> []
        | Some rel ->
            let n = List.length a.args in
            List.concat_map
              (fun tup ->
                if Array.length tup <> n then []
                else
                  let rec unify env k = function
                    | [] -> Some env
                    | Atom.Cst c :: more ->
                        if Value.equal c tup.(k) then unify env (k + 1) more
                        else None
                    | Atom.Var x :: more -> (
                        match SM.find_opt x env with
                        | Some v ->
                            if Value.equal v tup.(k) then
                              unify env (k + 1) more
                            else None
                        | None -> unify (SM.add x tup.(k) env) (k + 1) more)
                  in
                  match unify env 0 a.args with
                  | Some env' -> go env' rest
                  | None -> [])
              rel.Instance.tuples)
  in
  go SM.empty atoms |> List.map SM.bindings

let eval _schema inst q =
  let header =
    List.mapi
      (fun i t -> match t with Atom.Var x -> x | Atom.Cst _ -> Printf.sprintf "ans%d" i)
      q.head
  in
  let envs = ground_matches inst q.body in
  let tuples =
    List.map
      (fun env ->
        Array.of_list
          (List.map
             (fun t ->
               match t with
               | Atom.Cst c -> c
               | Atom.Var x -> (
                   match List.assoc_opt x env with
                   | Some v -> v
                   | None ->
                       invalid_arg
                         (Printf.sprintf "eval %s: unsafe head variable %s"
                            q.name x)))
             q.head))
      envs
  in
  (* set semantics *)
  let seen = Hashtbl.create 64 in
  let tuples =
    List.filter
      (fun tup ->
        let k =
          String.concat "\x00" (Array.to_list (Array.map Value.to_string tup))
        in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.replace seen k ();
          true
        end)
      tuples
  in
  { Instance.header; tuples }

let pp ppf q =
  Fmt.pf ppf "%s(%a) :- %a" q.name
    (Fmt.list ~sep:Fmt.comma Atom.pp_term)
    q.head
    (Fmt.list ~sep:Fmt.comma Atom.pp)
    q.body

(* Saturate a query body under the schema's RICs: a bounded symbolic
   chase that adds, for every atom referencing another table, the
   referenced atom with fresh variables (unless one with the same
   referenced-column arguments is already present). Used to compare
   queries *under dependencies*: q1 is contained in q2 under the RICs
   iff q2 maps homomorphically into the saturated q1. *)
let saturate ?(max_rounds = 4) ~schema q =
  let module Schema = Smg_relational.Schema in
  let arg_of (a : Atom.t) table column =
    let t = Schema.find_table_exn schema table in
    let rec go cols args =
      match (cols, args) with
      | c :: _, v :: _ when String.equal c column -> v
      | _ :: cs, _ :: vs -> go cs vs
      | _, _ -> invalid_arg "saturate: arity"
    in
    go (Schema.column_names t) a.Atom.args
  in
  let fresh = ref 0 in
  let rec rounds body k =
    if k >= max_rounds then body
    else begin
      let additions =
        List.concat_map
          (fun (a : Atom.t) ->
            List.filter_map
              (fun (r : Schema.ric) ->
                if not (String.equal a.Atom.pred r.Schema.from_table) then None
                else begin
                  let ref_args =
                    List.map (arg_of a r.Schema.from_table) r.Schema.from_cols
                  in
                  let satisfied =
                    List.exists
                      (fun (b : Atom.t) ->
                        String.equal b.Atom.pred r.Schema.to_table
                        && List.for_all2
                             (fun c v ->
                               Atom.equal_term (arg_of b r.Schema.to_table c) v)
                             r.Schema.to_cols ref_args)
                      body
                  in
                  if satisfied then None
                  else begin
                    let t = Schema.find_table_exn schema r.Schema.to_table in
                    let pairings = List.combine r.Schema.to_cols ref_args in
                    let args =
                      List.map
                        (fun c ->
                          match List.assoc_opt c pairings with
                          | Some v -> v
                          | None ->
                              incr fresh;
                              Atom.Var (Printf.sprintf "_sat%d" !fresh))
                        (Schema.column_names t)
                    in
                    Some (Atom.atom r.Schema.to_table args)
                  end
                end)
              schema.Schema.rics)
          body
      in
      (* deduplicate additions against each other *)
      let additions =
        List.fold_left
          (fun acc a -> if List.exists (Atom.equal a) acc then acc else a :: acc)
          [] additions
      in
      if additions = [] then body else rounds (body @ List.rev additions) (k + 1)
    end
  in
  { q with body = rounds q.body 0 }

let contained_under ~schema q1 q2 =
  Option.is_some (homomorphism ~from_:q2 ~to_:(saturate ~schema q1))
