(** Conjunctive queries: containment, equivalence, minimization,
    and evaluation over relational instances.

    A query [q(head) :- body] has distinguished (head) terms and a body
    of atoms. Containment and equivalence are the classical
    homomorphism-based notions (Chandra–Merlin). *)

type t = { name : string; head : Atom.term list; body : Atom.t list }

val make : ?name:string -> head:Atom.term list -> Atom.t list -> t
val head_vars : t -> string list
val body_vars : t -> string list
val all_vars : t -> string list

val rename_apart : suffix:string -> t -> t
(** Rename every variable by appending [suffix]. *)

val homomorphism : from_:t -> to_:t -> Atom.Subst.t option
(** A homomorphism [h] from [from_]'s body into [to_]'s body (variables
    of [to_] are rigid) with [h(from_.head) = to_.head] positionally;
    [None] if heads have different arities or no homomorphism exists. *)

val matches_into : rigid:Atom.t list -> Atom.t list -> Atom.Subst.t list
(** All homomorphisms of the given atom list into the rigid fact list
    (variables occurring in [rigid] behave as constants). *)

val contained_in : t -> t -> bool
(** [contained_in q1 q2] is true iff the answers of [q1] are a subset of
    the answers of [q2] on every instance. *)

val equivalent : t -> t -> bool
val minimize : t -> t
(** The core of the query: a minimal equivalent subquery. *)

val eval :
  Smg_relational.Schema.t ->
  Smg_relational.Instance.t ->
  t ->
  Smg_relational.Instance.relation
(** Evaluate the query; body predicates are table names with positional
    arguments in the table's column order. The output header uses the
    head variable names ([ansN] for constant head positions). *)

val ground_matches :
  Smg_relational.Instance.t -> Atom.t list -> (string * Smg_relational.Value.t) list list
(** All assignments of body variables to instance values satisfying the
    atom list (the workhorse for {!eval} and the chase). *)

val pp : Format.formatter -> t -> unit

val saturate :
  ?max_rounds:int -> schema:Smg_relational.Schema.t -> t -> t
(** Extend the body with the atoms implied by the schema's RICs (a
    bounded symbolic chase; default 4 rounds, enough for the chains in
    practice — cyclic RICs are cut off by the bound). *)

val contained_under :
  schema:Smg_relational.Schema.t -> t -> t -> bool
(** Containment *under the schema's referential constraints*:
    [contained_under ~schema q1 q2] holds iff [q2] maps into the
    saturation of [q1] (sound; complete up to the chase bound). *)
