(** UML-style [min..max] participation constraints and their algebra.

    For a directed connection from [C] to [D], the cardinality bounds how
    many [D]-objects a single [C]-object relates to. [max = None] is the
    unbounded "[*]". A connection is *functional* when [max = Some 1]. *)

type t = { cmin : int; cmax : int option }

val make : int -> int option -> t
(** @raise Invalid_argument if [min < 0] or [max < min]. *)

val exactly_one : t
(** [1..1] *)

val at_most_one : t
(** [0..1] *)

val at_least_one : t
(** [1..*] *)

val many : t
(** [0..*] *)

val is_functional : t -> bool
val is_total : t -> bool  (** [min >= 1] *)

val compose : t -> t -> t
(** Cardinality of the composition of two connections: mins multiply
    (totality is preserved only if both are total), maxes multiply
    ([*] absorbs). *)

(** Classification of a two-sided connection between [C] and [D]:
    [forward] constrains D-per-C, [backward] C-per-D. *)
type shape = OneOne | ManyOne | OneMany | ManyMany

val shape : forward:t -> backward:t -> shape

val compatible_shape : shape -> shape -> bool
(** Shapes are compatible when equal, or when one is the transpose
    question of the other handled by the caller; [ManyOne] vs [OneMany]
    are *not* compatible. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_shape : Format.formatter -> shape -> unit
