(** The conceptual modelling language (CML) of the paper: classes with
    attributes and identifiers, binary relationships with cardinality
    constraints, reified (n-ary / attributed / many-many) relationships
    with roles, ISA hierarchies with disjointness and covering
    constraints, and the [partOf] semantic annotation.

    A CM is a purely declarative description; [Cm_graph.compile] turns
    it into the labelled graph the discovery algorithm works on. *)

type semantic_kind = Ordinary | PartOf

type class_decl = {
  class_name : string;
  attributes : string list;
  identifier : string list;
      (** attributes identifying instances; subset of [attributes] *)
}

type binary_rel = {
  rel_name : string;
  rel_src : string;
  rel_dst : string;
  card_dst : Cardinality.t;  (** #dst objects per src object *)
  card_src : Cardinality.t;  (** #src objects per dst object *)
  rel_kind : semantic_kind;
}

type role = {
  role_name : string;
  filler : string;
  card_inv : Cardinality.t;
      (** #relationship instances a single filler participates in;
          [0..1]/[1..1] means at-most-once participation *)
}

type reified_rel = {
  rr_name : string;
  roles : role list;  (** at least two *)
  rr_attributes : string list;
  rr_kind : semantic_kind;
}

type isa = { sub : string; super : string }

type t = {
  cm_name : string;
  classes : class_decl list;
  binaries : binary_rel list;
  reified : reified_rel list;
  isas : isa list;
  disjointness : string list list;
      (** each group lists mutually disjoint classes *)
  covers : (string * string list) list;
      (** (superclass, covering subclasses) *)
}

val cls : ?id:string list -> string -> string list -> class_decl
(** [cls name attrs] — [id] defaults to the empty identifier. *)

val rel :
  ?kind:semantic_kind ->
  string ->
  src:string ->
  dst:string ->
  card:Cardinality.t * Cardinality.t ->
  binary_rel
(** [rel name ~src ~dst ~card:(dst_per_src, src_per_dst)]. *)

val functional :
  ?kind:semantic_kind ->
  ?total:bool ->
  string ->
  src:string ->
  dst:string ->
  binary_rel
(** A functional relationship [src --name->> dst] ([0..1] forward, or
    [1..1] when [total]); inverse unconstrained. *)

val many_many : ?kind:semantic_kind -> string -> src:string -> dst:string -> binary_rel

val reified :
  ?kind:semantic_kind ->
  ?attrs:string list ->
  string ->
  (string * string * Cardinality.t) list ->
  reified_rel
(** [reified name roles] with roles given as
    [(role_name, filler_class, inverse_cardinality)]. *)

val make :
  name:string ->
  ?binaries:binary_rel list ->
  ?reified:reified_rel list ->
  ?isas:isa list ->
  ?disjointness:string list list ->
  ?covers:(string * string list) list ->
  class_decl list ->
  t
(** Validates name references and uniqueness.
    @raise Invalid_argument on dangling class names, duplicate
    class/relationship names, identifiers outside the attribute list, or
    reified relationships with fewer than two roles. *)

val find_class : t -> string -> class_decl option
val class_names : t -> string list

val subclasses : t -> string -> string list
(** Direct subclasses. *)

val superclasses : t -> string -> string list
(** Direct superclasses. *)

val ancestors : t -> string -> string list
(** Transitive superclasses, excluding the class itself. *)

val disjoint : t -> string -> string -> bool
(** Are the two classes declared (directly) mutually disjoint? *)

val reify_many_many : t -> t
(** Replace every many-to-many binary relationship by a reified
    relationship with roles [src]/[dst] (§3.3: the algorithm treats
    many-many binaries in reified form). Idempotent on the rest. *)

val n_nodes : t -> int
(** Number of nodes of the compiled CM graph (classes + reified
    relationship classes + attribute nodes) — the paper's Table 1
    "#nodes in CM" statistic. *)

val pp : Format.formatter -> t -> unit
