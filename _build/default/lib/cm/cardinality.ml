type t = { cmin : int; cmax : int option }

let make cmin cmax =
  if cmin < 0 then invalid_arg "Cardinality.make: negative min";
  (match cmax with
  | Some m when m < cmin -> invalid_arg "Cardinality.make: max < min"
  | Some m when m < 1 -> invalid_arg "Cardinality.make: max < 1"
  | _ -> ());
  { cmin; cmax }

let exactly_one = { cmin = 1; cmax = Some 1 }
let at_most_one = { cmin = 0; cmax = Some 1 }
let at_least_one = { cmin = 1; cmax = None }
let many = { cmin = 0; cmax = None }

let is_functional c = c.cmax = Some 1
let is_total c = c.cmin >= 1

let compose a b =
  let cmin = if a.cmin >= 1 && b.cmin >= 1 then 1 else 0 in
  let cmax =
    match (a.cmax, b.cmax) with
    | Some x, Some y -> Some (x * y)
    | _, _ -> None
  in
  { cmin; cmax }

type shape = OneOne | ManyOne | OneMany | ManyMany

let shape ~forward ~backward =
  match (is_functional forward, is_functional backward) with
  | true, true -> OneOne
  | true, false -> ManyOne
  | false, true -> OneMany
  | false, false -> ManyMany

let compatible_shape a b = a = b

let equal a b = a.cmin = b.cmin && a.cmax = b.cmax

let pp ppf c =
  match c.cmax with
  | None -> Fmt.pf ppf "%d..*" c.cmin
  | Some m -> Fmt.pf ppf "%d..%d" c.cmin m

let pp_shape ppf = function
  | OneOne -> Fmt.string ppf "one-one"
  | ManyOne -> Fmt.string ppf "many-one"
  | OneMany -> Fmt.string ppf "one-many"
  | ManyMany -> Fmt.string ppf "many-many"
