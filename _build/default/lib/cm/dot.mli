(** GraphViz (DOT) export of CM graphs, with optional highlighting of a
    discovered conceptual subgraph. Classes render as boxes, reified
    relationships as diamonds, attributes as plain ovals; ISA edges use
    the UML hollow-triangle convention ([arrowhead=empty]). *)

val of_cm_graph :
  ?name:string ->
  ?highlight_nodes:int list ->
  ?highlight_edges:int list ->
  ?attributes:bool ->
  Cm_graph.t ->
  string
(** [attributes] (default true) includes attribute nodes. Inverse edges
    are suppressed (each relationship renders once, labelled with both
    cardinalities). Highlighted elements are drawn bold red. *)
