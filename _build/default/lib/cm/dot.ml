module Digraph = Smg_graph.Digraph

let escape s =
  String.concat ""
    (List.map
       (fun c -> if c = '"' then "\\\"" else String.make 1 c)
       (List.init (String.length s) (String.get s)))

let of_cm_graph ?(name = "cm") ?(highlight_nodes = []) ?(highlight_edges = [])
    ?(attributes = true) t =
  let g = Cm_graph.graph t in
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "digraph \"%s\" {\n" (escape name);
  pf "  rankdir=LR;\n  node [fontsize=10]; edge [fontsize=9];\n";
  List.iter
    (fun v ->
      let hl = List.mem v highlight_nodes in
      let style extra =
        if hl then extra ^ ", color=red, penwidth=2" else extra
      in
      match Cm_graph.node t v with
      | Cm_graph.Class c ->
          pf "  n%d [label=\"%s\", shape=box, %s];\n" v (escape c)
            (style "style=rounded")
      | Cm_graph.Reified r ->
          pf "  n%d [label=\"%s◇\", shape=diamond%s];\n" v (escape r)
            (if hl then ", color=red, penwidth=2" else "")
      | Cm_graph.Attr (_, a) ->
          if attributes then
            pf "  n%d [label=\"%s\", shape=oval, fontsize=8%s];\n" v (escape a)
              (if hl then ", color=red" else ""))
    (Digraph.nodes g);
  (* render each relationship/role/isa once: skip inverse partners *)
  let is_forward id =
    match Cm_graph.inverse_edge t id with
    | Some inv -> id < inv
    | None -> true
  in
  List.iter
    (fun (e : Cm_graph.edge_lbl Digraph.edge) ->
      let hl =
        List.mem e.Digraph.id highlight_edges
        || (match Cm_graph.inverse_edge t e.Digraph.id with
           | Some inv -> List.mem inv highlight_edges
           | None -> false)
      in
      let color = if hl then ", color=red, penwidth=2" else "" in
      let card () =
        match Cm_graph.inverse_edge t e.Digraph.id with
        | Some inv ->
            Fmt.str "%a / %a" Cardinality.pp e.Digraph.lbl.Cm_graph.card
              Cardinality.pp
              (Digraph.edge g inv).Digraph.lbl.Cm_graph.card
        | None -> ""
      in
      if is_forward e.Digraph.id then
        match e.Digraph.lbl.Cm_graph.kind with
        | Cm_graph.Rel r ->
            let sem =
              match e.Digraph.lbl.Cm_graph.sem with
              | Cml.PartOf -> " ◆"
              | Cml.Ordinary -> ""
            in
            pf "  n%d -> n%d [label=\"%s%s\\n%s\"%s];\n" e.Digraph.src
              e.Digraph.dst (escape r) sem (card ()) color
        | Cm_graph.Role ro ->
            pf "  n%d -> n%d [label=\"%s\", style=dashed%s];\n" e.Digraph.src
              e.Digraph.dst (escape ro) color
        | Cm_graph.Isa ->
            pf "  n%d -> n%d [arrowhead=empty%s];\n" e.Digraph.src e.Digraph.dst
              color
        | Cm_graph.HasAttr _ ->
            if attributes then
              pf "  n%d -> n%d [arrowhead=none, style=dotted%s];\n"
                e.Digraph.src e.Digraph.dst color
        | Cm_graph.RelInv _ | Cm_graph.RoleInv _ | Cm_graph.IsaInv -> ())
    (Digraph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
