lib/cm/cm_graph.mli: Cardinality Cml Format Smg_graph
