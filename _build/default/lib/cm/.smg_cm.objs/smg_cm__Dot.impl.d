lib/cm/dot.ml: Buffer Cardinality Cm_graph Cml Fmt List Printf Smg_graph String
