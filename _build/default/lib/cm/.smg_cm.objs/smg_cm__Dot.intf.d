lib/cm/dot.mli: Cm_graph
