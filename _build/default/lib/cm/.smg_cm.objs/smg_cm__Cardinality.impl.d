lib/cm/cardinality.ml: Fmt
