lib/cm/cml.ml: Cardinality Fmt Hashtbl List Printf String
