lib/cm/cardinality.mli: Format
