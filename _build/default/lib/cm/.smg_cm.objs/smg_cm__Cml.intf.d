lib/cm/cml.mli: Cardinality Format
