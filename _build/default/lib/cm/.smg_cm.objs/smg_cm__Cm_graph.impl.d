lib/cm/cm_graph.ml: Array Cardinality Cml Fmt Hashtbl List Option Printf Smg_graph String
