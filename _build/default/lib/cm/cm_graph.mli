(** Compilation of a CM into the labelled *CM graph* of §2.

    Nodes are classes (including reified-relationship classes) and
    attribute nodes; edges are relationships and their inverses, roles
    and their inverses, ISA (functional [1..1] up, [0..1] down) and
    attribute edges. Every relationship-like edge is paired with its
    inverse, and the pairing is recorded so path analyses can reason
    about traversal direction. *)

type node =
  | Class of string
  | Reified of string
  | Attr of string * string  (** (owner class, attribute name) *)

type edge_kind =
  | Rel of string       (** binary relationship, source → destination *)
  | RelInv of string
  | Role of string      (** reified class → filler *)
  | RoleInv of string
  | Isa                 (** subclass → superclass *)
  | IsaInv
  | HasAttr of string   (** class → attribute node *)

type edge_lbl = {
  kind : edge_kind;
  card : Cardinality.t;          (** #dst per src along this direction *)
  sem : Cml.semantic_kind;
}

type t

val compile : Cml.t -> t
val cm : t -> Cml.t
val graph : t -> edge_lbl Smg_graph.Digraph.t

val class_node : t -> string -> int option
(** Node of a class or reified-relationship class, by name. *)

val class_node_exn : t -> string -> int
val attr_node : t -> owner:string -> string -> int option
val node : t -> int -> node
val node_name : t -> int -> string
(** Class name, reified name, or "owner.attr". *)

val is_class_like : t -> int -> bool
val is_reified : t -> int -> bool
val arity : t -> int -> int option
(** Number of roles when the node is reified. *)

val identifier_attrs : t -> int -> string list
(** Identifier attributes of a class node (empty for reified/attr). *)

val attr_edges : t -> int -> (string * int) list
(** [(attribute, attr_node)] pairs of a class-like node. *)

val inverse_edge : t -> int -> int option
(** Paired inverse edge id of a relationship/role/ISA edge. *)

val is_functional_edge : edge_lbl -> bool
val is_connection_edge : edge_lbl -> bool
(** True for relationship/role/ISA edges (not attribute edges). *)

val steiner_cost :
  t ->
  ?lossy:bool ->
  pre_selected:(int -> bool) ->
  unit ->
  edge_lbl Smg_graph.Digraph.edge ->
  float option
(** Edge-cost function for minimal-functional-tree search. Attribute
    edges are never traversable. Functional connection edges cost 0 when
    [pre_selected], 1/2 through reified roles (§3.3: a role path of
    length two counts as one), 1 otherwise; ISA edges cost like ordinary
    functional edges. Non-functional edges are non-traversable unless
    [lossy] is set, in which case they cost more than the sum of all
    functional edge costs (Wald–Sorenson). *)

val reversals : t -> int list -> int
(** Number of maximal runs of non-functional traversals along an edge-id
    path — the "lossy join" count minimised in §3.3. *)

val path_shape : t -> int list -> Cardinality.shape
(** Shape of the connection realised by an edge-id path: composition of
    the cardinalities forward vs composition of the inverses backward.
    The empty path is [OneOne]. *)

val consistent_subgraph : t -> int list -> bool
(** Disjointness filter of §3.2: within the subgraph induced by the
    given edges, identity flows through ISA edges; if any two classes
    forced to share an instance are declared disjoint, the subgraph is
    inconsistent. *)

val pp_node : t -> Format.formatter -> int -> unit
val pp_edge : t -> Format.formatter -> int -> unit
