module Digraph = Smg_graph.Digraph

type node =
  | Class of string
  | Reified of string
  | Attr of string * string

type edge_kind =
  | Rel of string
  | RelInv of string
  | Role of string
  | RoleInv of string
  | Isa
  | IsaInv
  | HasAttr of string

type edge_lbl = {
  kind : edge_kind;
  card : Cardinality.t;
  sem : Cml.semantic_kind;
}

type t = {
  cm : Cml.t;
  graph : edge_lbl Digraph.t;
  node_arr : node array;
  class_tbl : (string, int) Hashtbl.t;       (* class / reified name -> node *)
  attr_tbl : (string * string, int) Hashtbl.t;
  inv_arr : int array;                       (* edge id -> inverse edge id, -1 *)
}

let cm t = t.cm
let graph t = t.graph
let class_node t name = Hashtbl.find_opt t.class_tbl name

let class_node_exn t name =
  match class_node t name with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "CM graph: no class %s" name)

let attr_node t ~owner a = Hashtbl.find_opt t.attr_tbl (owner, a)
let node t v = t.node_arr.(v)

let node_name t v =
  match t.node_arr.(v) with
  | Class c -> c
  | Reified r -> r
  | Attr (o, a) -> o ^ "." ^ a

let is_class_like t v =
  match t.node_arr.(v) with Class _ | Reified _ -> true | Attr _ -> false

let is_reified t v = match t.node_arr.(v) with Reified _ -> true | _ -> false

let arity t v =
  match t.node_arr.(v) with
  | Reified name ->
      List.find_opt (fun r -> String.equal r.Cml.rr_name name) t.cm.Cml.reified
      |> Option.map (fun r -> List.length r.Cml.roles)
  | Class _ | Attr _ -> None

let identifier_attrs t v =
  match t.node_arr.(v) with
  | Class name -> (
      match Cml.find_class t.cm name with
      | Some c -> c.Cml.identifier
      | None -> [])
  | Reified _ | Attr _ -> []

let attr_edges t v =
  Digraph.out_edges t.graph v
  |> List.filter_map (fun (e : _ Digraph.edge) ->
         match e.lbl.kind with
         | HasAttr a -> Some (a, e.dst)
         | Rel _ | RelInv _ | Role _ | RoleInv _ | Isa | IsaInv -> None)

let inverse_edge t id =
  let i = t.inv_arr.(id) in
  if i < 0 then None else Some i

let is_functional_edge lbl = Cardinality.is_functional lbl.card

let is_connection_edge lbl =
  match lbl.kind with
  | Rel _ | RelInv _ | Role _ | RoleInv _ | Isa | IsaInv -> true
  | HasAttr _ -> false

let compile cm =
  let nodes = ref [] and n = ref 0 in
  let class_tbl = Hashtbl.create 32 in
  let attr_tbl = Hashtbl.create 64 in
  let add_node payload =
    let id = !n in
    incr n;
    nodes := payload :: !nodes;
    id
  in
  List.iter
    (fun (c : Cml.class_decl) ->
      Hashtbl.replace class_tbl c.class_name (add_node (Class c.class_name)))
    cm.Cml.classes;
  List.iter
    (fun (r : Cml.reified_rel) ->
      Hashtbl.replace class_tbl r.rr_name (add_node (Reified r.rr_name)))
    cm.Cml.reified;
  List.iter
    (fun (c : Cml.class_decl) ->
      List.iter
        (fun a ->
          Hashtbl.replace attr_tbl (c.class_name, a)
            (add_node (Attr (c.class_name, a))))
        c.attributes)
    cm.Cml.classes;
  List.iter
    (fun (r : Cml.reified_rel) ->
      List.iter
        (fun a ->
          Hashtbl.replace attr_tbl (r.rr_name, a)
            (add_node (Attr (r.rr_name, a))))
        r.rr_attributes)
    cm.Cml.reified;
  let cn name = Hashtbl.find class_tbl name in
  (* Build edges with explicit inverse pairing: [pairs] maps positions in
     the triple list; edge ids equal positions after Digraph.make. *)
  let triples = ref [] and count = ref 0 and pairs = ref [] in
  let push src dst lbl =
    let id = !count in
    incr count;
    triples := (src, dst, lbl) :: !triples;
    id
  in
  let push_pair src dst fwd bwd =
    let a = push src dst fwd in
    let b = push dst src bwd in
    pairs := (a, b) :: !pairs
  in
  List.iter
    (fun (r : Cml.binary_rel) ->
      push_pair (cn r.rel_src) (cn r.rel_dst)
        { kind = Rel r.rel_name; card = r.card_dst; sem = r.rel_kind }
        { kind = RelInv r.rel_name; card = r.card_src; sem = r.rel_kind })
    cm.Cml.binaries;
  List.iter
    (fun (r : Cml.reified_rel) ->
      List.iter
        (fun (ro : Cml.role) ->
          push_pair (cn r.rr_name) (cn ro.filler)
            {
              kind = Role ro.role_name;
              card = Cardinality.exactly_one;
              sem = r.rr_kind;
            }
            { kind = RoleInv ro.role_name; card = ro.card_inv; sem = r.rr_kind })
        r.roles)
    cm.Cml.reified;
  List.iter
    (fun (i : Cml.isa) ->
      push_pair (cn i.sub) (cn i.super)
        { kind = Isa; card = Cardinality.exactly_one; sem = Cml.Ordinary }
        { kind = IsaInv; card = Cardinality.at_most_one; sem = Cml.Ordinary })
    cm.Cml.isas;
  let owner_attr owner a =
    ignore
      (push (cn owner)
         (Hashtbl.find attr_tbl (owner, a))
         {
           kind = HasAttr a;
           card = Cardinality.exactly_one;
           sem = Cml.Ordinary;
         })
  in
  List.iter
    (fun (c : Cml.class_decl) ->
      List.iter (owner_attr c.class_name) c.attributes)
    cm.Cml.classes;
  List.iter
    (fun (r : Cml.reified_rel) ->
      List.iter (owner_attr r.rr_name) r.rr_attributes)
    cm.Cml.reified;
  let graph = Digraph.make ~n:!n (List.rev !triples) in
  let inv_arr = Array.make (Digraph.n_edges graph) (-1) in
  List.iter
    (fun (a, b) ->
      inv_arr.(a) <- b;
      inv_arr.(b) <- a)
    !pairs;
  {
    cm;
    graph;
    node_arr = Array.of_list (List.rev !nodes);
    class_tbl;
    attr_tbl;
    inv_arr;
  }

let steiner_cost t ?(lossy = false) ~pre_selected () =
  (* The lossy penalty must exceed the sum of all functional edge costs. *)
  let functional_sum =
    Digraph.fold_edges
      (fun acc (e : edge_lbl Digraph.edge) ->
        if is_connection_edge e.lbl && is_functional_edge e.lbl then acc +. 1.
        else acc)
      0. t.graph
  in
  let penalty = functional_sum +. 1. in
  fun (e : edge_lbl Digraph.edge) ->
    if not (is_connection_edge e.lbl) then None
    else if is_functional_edge e.lbl then
      (* Pre-selected edges are "free" (§3.2), but a small epsilon keeps
         tree search from padding zero-cost cycles into the result: the
         fewest-edge tree among free ones must still win. *)
      if pre_selected e.id then Some 0.001
      else
        Some
          (match e.lbl.kind with
          | Role _ | RoleInv _ -> 0.5
          | Rel _ | RelInv _ | Isa | IsaInv -> 1.
          | HasAttr _ -> assert false)
    else if lossy then Some penalty
    else None

let reversals t edge_ids =
  let rec go in_run acc = function
    | [] -> acc
    | id :: rest ->
        let e = Digraph.edge t.graph id in
        if is_functional_edge e.lbl then go false acc rest
        else if in_run then go true acc rest
        else go true (acc + 1) rest
  in
  go false 0 edge_ids

let path_shape t edge_ids =
  let fwd =
    List.fold_left
      (fun acc id ->
        Cardinality.compose acc (Digraph.edge t.graph id).lbl.card)
      Cardinality.exactly_one edge_ids
  in
  let bwd =
    List.fold_left
      (fun acc id ->
        let c =
          match inverse_edge t id with
          | Some inv -> (Digraph.edge t.graph inv).lbl.card
          | None -> Cardinality.many
        in
        Cardinality.compose acc c)
      Cardinality.exactly_one (List.rev edge_ids)
  in
  Cardinality.shape ~forward:fwd ~backward:bwd

let consistent_subgraph t edge_ids =
  (* Union-find over nodes, merging across ISA edges of the subgraph. *)
  let parent = Hashtbl.create 16 in
  let rec find v =
    match Hashtbl.find_opt parent v with
    | None -> v
    | Some p ->
        let r = find p in
        Hashtbl.replace parent v r;
        r
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  List.iter
    (fun id ->
      let e = Digraph.edge t.graph id in
      match e.lbl.kind with
      | Isa | IsaInv -> union e.src e.dst
      | Rel _ | RelInv _ | Role _ | RoleInv _ | HasAttr _ -> ())
    edge_ids;
  (* Collect class names per identity component. *)
  let groups = Hashtbl.create 16 in
  let touch v =
    match t.node_arr.(v) with
    | Class c ->
        let r = find v in
        let existing = Option.value ~default:[] (Hashtbl.find_opt groups r) in
        if not (List.mem c existing) then Hashtbl.replace groups r (c :: existing)
    | Reified _ | Attr _ -> ()
  in
  List.iter
    (fun id ->
      let e = Digraph.edge t.graph id in
      touch e.src;
      touch e.dst)
    edge_ids;
  Hashtbl.fold
    (fun _ classes ok ->
      ok
      && not
           (List.exists
              (fun a -> List.exists (fun b -> Cml.disjoint t.cm a b) classes)
              classes))
    groups true

let pp_node t ppf v = Fmt.string ppf (node_name t v)

let pp_edge t ppf id =
  let e = Digraph.edge t.graph id in
  let kind_str =
    match e.lbl.kind with
    | Rel r -> r
    | RelInv r -> r ^ "⁻"
    | Role r -> r
    | RoleInv r -> r ^ "⁻"
    | Isa -> "isa"
    | IsaInv -> "isa⁻"
    | HasAttr a -> "@" ^ a
  in
  Fmt.pf ppf "%s --%s[%a]--> %s" (node_name t e.src) kind_str Cardinality.pp
    e.lbl.card (node_name t e.dst)
