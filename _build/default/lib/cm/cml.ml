type semantic_kind = Ordinary | PartOf

type class_decl = {
  class_name : string;
  attributes : string list;
  identifier : string list;
}

type binary_rel = {
  rel_name : string;
  rel_src : string;
  rel_dst : string;
  card_dst : Cardinality.t;
  card_src : Cardinality.t;
  rel_kind : semantic_kind;
}

type role = { role_name : string; filler : string; card_inv : Cardinality.t }

type reified_rel = {
  rr_name : string;
  roles : role list;
  rr_attributes : string list;
  rr_kind : semantic_kind;
}

type isa = { sub : string; super : string }

type t = {
  cm_name : string;
  classes : class_decl list;
  binaries : binary_rel list;
  reified : reified_rel list;
  isas : isa list;
  disjointness : string list list;
  covers : (string * string list) list;
}

let cls ?(id = []) class_name attributes =
  { class_name; attributes; identifier = id }

let rel ?(kind = Ordinary) rel_name ~src ~dst ~card:(card_dst, card_src) =
  { rel_name; rel_src = src; rel_dst = dst; card_dst; card_src; rel_kind = kind }

let functional ?(kind = Ordinary) ?(total = false) name ~src ~dst =
  let forward =
    if total then Cardinality.exactly_one else Cardinality.at_most_one
  in
  rel ~kind name ~src ~dst ~card:(forward, Cardinality.many)

let many_many ?(kind = Ordinary) name ~src ~dst =
  rel ~kind name ~src ~dst ~card:(Cardinality.many, Cardinality.many)

let reified ?(kind = Ordinary) ?(attrs = []) rr_name roles =
  {
    rr_name;
    roles =
      List.map
        (fun (role_name, filler, card_inv) -> { role_name; filler; card_inv })
        roles;
    rr_attributes = attrs;
    rr_kind = kind;
  }

let validate cm =
  let class_tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      if Hashtbl.mem class_tbl c.class_name then
        invalid_arg (Printf.sprintf "CM %s: duplicate class %s" cm.cm_name c.class_name);
      Hashtbl.replace class_tbl c.class_name ();
      List.iter
        (fun a ->
          if not (List.mem a c.attributes) then
            invalid_arg
              (Printf.sprintf "CM %s: class %s identifier %s not an attribute"
                 cm.cm_name c.class_name a))
        c.identifier)
    cm.classes;
  let check_class ctx name =
    if not (Hashtbl.mem class_tbl name) then
      invalid_arg (Printf.sprintf "CM %s: %s references unknown class %s" cm.cm_name ctx name)
  in
  let rel_tbl = Hashtbl.create 16 in
  let check_rel_name n =
    if Hashtbl.mem rel_tbl n then
      invalid_arg (Printf.sprintf "CM %s: duplicate relationship %s" cm.cm_name n);
    Hashtbl.replace rel_tbl n ()
  in
  List.iter
    (fun r ->
      check_rel_name r.rel_name;
      check_class r.rel_name r.rel_src;
      check_class r.rel_name r.rel_dst)
    cm.binaries;
  List.iter
    (fun r ->
      check_rel_name r.rr_name;
      if List.length r.roles < 2 then
        invalid_arg
          (Printf.sprintf "CM %s: reified %s needs >= 2 roles" cm.cm_name r.rr_name);
      if Hashtbl.mem class_tbl r.rr_name then
        invalid_arg
          (Printf.sprintf "CM %s: reified %s clashes with a class" cm.cm_name r.rr_name);
      List.iter (fun ro -> check_class r.rr_name ro.filler) r.roles)
    cm.reified;
  List.iter
    (fun i ->
      check_class "isa" i.sub;
      check_class "isa" i.super)
    cm.isas;
  List.iter (List.iter (check_class "disjointness")) cm.disjointness;
  List.iter
    (fun (sup, subs) ->
      check_class "cover" sup;
      List.iter (check_class "cover") subs)
    cm.covers

let make ~name ?(binaries = []) ?(reified = []) ?(isas = [])
    ?(disjointness = []) ?(covers = []) classes =
  let cm =
    { cm_name = name; classes; binaries; reified; isas; disjointness; covers }
  in
  validate cm;
  cm

let find_class cm name =
  List.find_opt (fun c -> String.equal c.class_name name) cm.classes

let class_names cm = List.map (fun c -> c.class_name) cm.classes

let subclasses cm name =
  List.filter_map
    (fun i -> if String.equal i.super name then Some i.sub else None)
    cm.isas

let superclasses cm name =
  List.filter_map
    (fun i -> if String.equal i.sub name then Some i.super else None)
    cm.isas

let ancestors cm name =
  let rec go acc frontier =
    match frontier with
    | [] -> acc
    | c :: rest ->
        let supers =
          List.filter (fun s -> not (List.mem s acc)) (superclasses cm c)
        in
        go (acc @ supers) (rest @ supers)
  in
  go [] [ name ]

let disjoint cm a b =
  (not (String.equal a b))
  && List.exists (fun group -> List.mem a group && List.mem b group) cm.disjointness

let reify_many_many cm =
  let is_mm r =
    (not (Cardinality.is_functional r.card_dst))
    && not (Cardinality.is_functional r.card_src)
  in
  let mm, keep = List.partition is_mm cm.binaries in
  let extra =
    List.map
      (fun r ->
        {
          rr_name = r.rel_name;
          roles =
            [
              { role_name = r.rel_name ^ "_src"; filler = r.rel_src; card_inv = r.card_src };
              { role_name = r.rel_name ^ "_dst"; filler = r.rel_dst; card_inv = r.card_dst };
            ];
          rr_attributes = [];
          rr_kind = r.rel_kind;
        })
      mm
  in
  { cm with binaries = keep; reified = cm.reified @ extra }

let n_nodes cm =
  let class_nodes = List.length cm.classes + List.length cm.reified in
  let attr_nodes =
    List.fold_left (fun acc c -> acc + List.length c.attributes) 0 cm.classes
    + List.fold_left (fun acc r -> acc + List.length r.rr_attributes) 0 cm.reified
  in
  class_nodes + attr_nodes

let pp_kind ppf = function
  | Ordinary -> ()
  | PartOf -> Fmt.string ppf " [partOf]"

let pp ppf cm =
  let pp_class ppf c =
    Fmt.pf ppf "class %s(%a) id(%a)" c.class_name
      Fmt.(list ~sep:comma string)
      c.attributes
      Fmt.(list ~sep:comma string)
      c.identifier
  in
  let pp_rel ppf r =
    Fmt.pf ppf "rel %s: %s -[%a/%a]- %s%a" r.rel_name r.rel_src Cardinality.pp
      r.card_dst Cardinality.pp r.card_src r.rel_dst pp_kind r.rel_kind
  in
  let pp_reified ppf r =
    Fmt.pf ppf "reified %s(%a)%a" r.rr_name
      Fmt.(
        list ~sep:comma (fun ppf ro ->
            pf ppf "%s:%s[%a]" ro.role_name ro.filler Cardinality.pp ro.card_inv))
      r.roles pp_kind r.rr_kind
  in
  let pp_isa ppf i = Fmt.pf ppf "isa %s < %s" i.sub i.super in
  Fmt.pf ppf "@[<v>cm %s@,%a@,%a@,%a@,%a@]" cm.cm_name
    (Fmt.list ~sep:Fmt.cut pp_class)
    cm.classes
    (Fmt.list ~sep:Fmt.cut pp_rel)
    cm.binaries
    (Fmt.list ~sep:Fmt.cut pp_reified)
    cm.reified
    (Fmt.list ~sep:Fmt.cut pp_isa)
    cm.isas
