(** CM-to-CM mapping discovery — the related problem the paper's §6
    plans as future work: given two conceptual models (no relational
    schemas) and correspondences between class *attributes*, find pairs
    of semantically similar conceptual subgraphs and return them as
    conjunctive queries over the CM predicates.

    The machinery is the relational algorithm's middle: lift
    correspondences to marked class nodes, connect them with minimal
    functional Steiner trees (or minimally-lossy non-functional paths
    for many-many connections), filter by disjointness consistency,
    cardinality-shape compatibility and [partOf] category, and encode
    the surviving CSG pairs with {!Smg_semantics.Encode}. Without
    tables there is no pre-selection and no LAV rewriting. *)

type corr = {
  cc_src : string * string;  (** (class, attribute) in the source CM *)
  cc_tgt : string * string;
}

val corr : src:string * string -> tgt:string * string -> corr

type result = {
  src_query : Smg_cq.Query.t;  (** over source CM predicates *)
  tgt_query : Smg_cq.Query.t;
  covered : corr list;
  score : float;
}

type options = {
  max_path_len : int;
  strict_partof : bool;
  allow_lossy : bool;
  max_candidates : int;
}

val default_options : options

val discover :
  ?options:options ->
  source:Smg_cm.Cml.t ->
  target:Smg_cm.Cml.t ->
  corrs:corr list ->
  unit ->
  result list
(** Ranked CSG pairs, best first.
    @raise Invalid_argument when a correspondence references an unknown
    class or an attribute not declared on the class or an ancestor. *)

val pp_result : Format.formatter -> result -> unit
