lib/core/discover.ml: Fmt Hashtbl List Logs Option Printf Smg_cm Smg_cq Smg_graph Smg_relational Smg_semantics String Sys
