lib/core/cm_discover.ml: Fmt Hashtbl List Option Printf Smg_cm Smg_cq Smg_graph Smg_semantics
