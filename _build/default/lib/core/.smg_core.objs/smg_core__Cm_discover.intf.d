lib/core/cm_discover.mli: Format Smg_cm Smg_cq
