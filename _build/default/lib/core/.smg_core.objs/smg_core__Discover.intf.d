lib/core/discover.mli: Smg_cm Smg_cq Smg_relational Smg_semantics
