module Digraph = Smg_graph.Digraph
module Steiner = Smg_graph.Steiner
module Paths = Smg_graph.Paths
module Cml = Smg_cm.Cml
module Cardinality = Smg_cm.Cardinality
module Cm_graph = Smg_cm.Cm_graph
module Stree = Smg_semantics.Stree
module Encode = Smg_semantics.Encode
module Query = Smg_cq.Query

type corr = { cc_src : string * string; cc_tgt : string * string }

let corr ~src ~tgt = { cc_src = src; cc_tgt = tgt }

type result = {
  src_query : Query.t;
  tgt_query : Query.t;
  covered : corr list;
  score : float;
}

type options = {
  max_path_len : int;
  strict_partof : bool;
  allow_lossy : bool;
  max_candidates : int;
}

let default_options =
  { max_path_len = 8; strict_partof = true; allow_lossy = true; max_candidates = 20 }

type lifted = { l_corr : corr; l_snode : int; l_sattr : string; l_tnode : int; l_tattr : string }

let lift cmg_s cmg_t corrs =
  let resolve cmg (cls, attr) =
    let node = Cm_graph.class_node_exn cmg cls in
    match Stree.declaring_class (Cm_graph.cm cmg) cls attr with
    | Some _ -> node
    | None ->
        invalid_arg
          (Printf.sprintf "cm corr: class %s has no attribute %s" cls attr)
  in
  List.map
    (fun c ->
      {
        l_corr = c;
        l_snode = resolve cmg_s c.cc_src;
        l_sattr = snd c.cc_src;
        l_tnode = resolve cmg_t c.cc_tgt;
        l_tattr = snd c.cc_tgt;
      })
    corrs

let uniq xs = List.sort_uniq compare xs

let class_like_nodes cmg =
  List.filter (Cm_graph.is_class_like cmg) (Digraph.nodes (Cm_graph.graph cmg))

(* minimal functional trees over every root; no pre-selection here *)
let minimal_trees cmg ~lossy ~roots ~terminals =
  if terminals = [] then []
  else
    let cost = Cm_graph.steiner_cost cmg ~lossy ~pre_selected:(fun _ -> false) () in
    Steiner.minimal_trees (Cm_graph.graph cmg) ~cost ~roots ~terminals

(* paths with minimal direction reversals for a pair of marked nodes *)
let lossy_paths cmg ~max_len ~src ~dst =
  let graph = Cm_graph.graph cmg in
  let ok (e : Cm_graph.edge_lbl Digraph.edge) =
    Cm_graph.is_connection_edge e.Digraph.lbl
  in
  let score (p : _ Paths.path) =
    float_of_int
      ((1000 * Cm_graph.reversals cmg p.Paths.edge_ids)
      + List.length p.Paths.edge_ids)
  in
  Paths.best_paths graph ~src ~dst ~max_len ~ok ~score

(* path between two nodes within an edge set (traversal ids) *)
let subpath cmg edge_ids a b =
  if a = b then Some []
  else begin
    let g = Cm_graph.graph cmg in
    let adj = Hashtbl.create 16 in
    let add v x =
      Hashtbl.replace adj v (x :: Option.value ~default:[] (Hashtbl.find_opt adj v))
    in
    List.iter
      (fun id ->
        let e = Digraph.edge g id in
        add e.Digraph.src (id, e.Digraph.dst);
        match Cm_graph.inverse_edge cmg id with
        | Some inv -> add e.Digraph.dst (inv, e.Digraph.src)
        | None -> ())
      (uniq edge_ids);
    let seen = Hashtbl.create 16 in
    Hashtbl.replace seen a ();
    let rec bfs frontier =
      match frontier with
      | [] -> None
      | _ -> (
          let next =
            List.concat_map
              (fun (v, path) ->
                List.filter_map
                  (fun (id, w) ->
                    if Hashtbl.mem seen w then None
                    else begin
                      Hashtbl.replace seen w ();
                      Some (w, id :: path)
                    end)
                  (Option.value ~default:[] (Hashtbl.find_opt adj v)))
              frontier
          in
          match List.find_opt (fun (w, _) -> w = b) next with
          | Some (_, p) -> Some (List.rev p)
          | None -> bfs next)
    in
    bfs [ (a, []) ]
  end

let leq_shape a b =
  let open Cardinality in
  match (a, b) with
  | OneOne, _ -> true
  | ManyOne, (ManyOne | ManyMany) -> true
  | OneMany, (OneMany | ManyMany) -> true
  | ManyMany, ManyMany -> true
  | (ManyOne | OneMany | ManyMany), _ -> false

let is_partof cmg ids =
  let g = Cm_graph.graph cmg in
  let non_isa =
    List.filter
      (fun id ->
        match (Digraph.edge g id).Digraph.lbl.Cm_graph.kind with
        | Cm_graph.Isa | Cm_graph.IsaInv -> false
        | _ -> true)
      ids
  in
  non_isa <> []
  && List.for_all
       (fun id -> (Digraph.edge g id).Digraph.lbl.Cm_graph.sem = Cml.PartOf)
       non_isa

let discover ?(options = default_options) ~source ~target ~corrs () =
  let cmg_s = Cm_graph.compile source and cmg_t = Cm_graph.compile target in
  let lifted = lift cmg_s cmg_t corrs in
  if lifted = [] then []
  else begin
    let marked_t = uniq (List.map (fun l -> l.l_tnode) lifted) in
    let marked_s = uniq (List.map (fun l -> l.l_snode) lifted) in
    let tgt_csgs =
      List.map
        (fun (t : Steiner.tree) ->
          ( Steiner.tree_nodes (Cm_graph.graph cmg_t) t,
            t.Steiner.edge_ids,
            t.Steiner.cost ))
        (minimal_trees cmg_t ~lossy:options.allow_lossy
           ~roots:(class_like_nodes cmg_t) ~terminals:marked_t)
      @
      (* a two-node many-many target connection can also be a path *)
      (match marked_t with
      | [ a; b ] ->
          List.map
            (fun (p : _ Paths.path) ->
              ( uniq p.Paths.nodes,
                p.Paths.edge_ids,
                float_of_int (List.length p.Paths.edge_ids) ))
            (lossy_paths cmg_t ~max_len:options.max_path_len ~src:a ~dst:b)
      | _ -> [])
    in
    let src_csgs =
      List.map
        (fun (t : Steiner.tree) ->
          ( Steiner.tree_nodes (Cm_graph.graph cmg_s) t,
            t.Steiner.edge_ids,
            t.Steiner.cost ))
        (minimal_trees cmg_s ~lossy:options.allow_lossy
           ~roots:(class_like_nodes cmg_s) ~terminals:marked_s)
      @
      (match marked_s with
      | [ a; b ] ->
          List.map
            (fun (p : _ Paths.path) ->
              ( uniq p.Paths.nodes,
                p.Paths.edge_ids,
                float_of_int (List.length p.Paths.edge_ids) ))
            (lossy_paths cmg_s ~max_len:options.max_path_len ~src:a ~dst:b)
      | _ -> [])
    in
    let candidates =
      List.concat_map
        (fun (t_nodes, t_edges, t_cost) ->
          if not (Cm_graph.consistent_subgraph cmg_t t_edges) then []
          else
            List.filter_map
              (fun (s_nodes, s_edges, s_cost) ->
                if not (Cm_graph.consistent_subgraph cmg_s s_edges) then None
                else begin
                  let covered =
                    List.filter
                      (fun l ->
                        List.mem l.l_snode s_nodes && List.mem l.l_tnode t_nodes)
                      lifted
                  in
                  if List.length covered < List.length lifted then None
                  else begin
                    (* pairwise compatibility *)
                    let penalty = ref (s_cost +. t_cost) in
                    let ok =
                      List.for_all
                        (fun la ->
                          List.for_all
                            (fun lb ->
                              if
                                la.l_snode >= lb.l_snode
                                || la.l_tnode = lb.l_tnode
                              then true
                              else
                                match
                                  ( subpath cmg_s s_edges la.l_snode lb.l_snode,
                                    subpath cmg_t t_edges la.l_tnode lb.l_tnode
                                  )
                                with
                                | Some sp, Some tp ->
                                    let ss = Cm_graph.path_shape cmg_s sp in
                                    let ts = Cm_graph.path_shape cmg_t tp in
                                    leq_shape ss ts
                                    &&
                                    (if
                                       is_partof cmg_t tp
                                       && not (is_partof cmg_s sp)
                                     then
                                       if options.strict_partof then false
                                       else begin
                                         penalty := !penalty +. 5.;
                                         true
                                       end
                                     else true)
                                | _, _ -> true)
                            covered)
                        covered
                    in
                    if not ok then None
                    else begin
                      let mk cmg nodes edges get_node get_attr =
                        Encode.query_of_csg cmg
                          {
                            Encode.csg_nodes = nodes;
                            csg_edges = edges;
                            csg_outputs =
                              List.mapi
                                (fun i l ->
                                  (get_node l, get_attr l, Printf.sprintf "v%d" i))
                                covered;
                            csg_anchor = None;
                          }
                      in
                      Some
                        {
                          src_query =
                            mk cmg_s s_nodes s_edges
                              (fun l -> l.l_snode)
                              (fun l -> l.l_sattr);
                          tgt_query =
                            mk cmg_t t_nodes t_edges
                              (fun l -> l.l_tnode)
                              (fun l -> l.l_tattr);
                          covered = List.map (fun l -> l.l_corr) covered;
                          score = !penalty;
                        }
                    end
                  end
                end)
              src_csgs)
        tgt_csgs
    in
    (* dedupe by query equivalence *)
    let deduped =
      List.fold_left
        (fun acc r ->
          if
            List.exists
              (fun r' ->
                Query.equivalent r.src_query r'.src_query
                && Query.equivalent r.tgt_query r'.tgt_query)
              acc
          then acc
          else r :: acc)
        [] candidates
    in
    List.sort (fun a b -> compare a.score b.score) deduped
    |> List.filteri (fun i _ -> i < options.max_candidates)
  end

let pp_result ppf r =
  Fmt.pf ppf "@[<v2>cm-mapping (score %.2f):@,src: %a@,tgt: %a@]" r.score
    Query.pp r.src_query Query.pp r.tgt_query
