lib/relational/value.ml: Fmt Stdlib String
