lib/relational/sql_ddl.mli: Schema Value
