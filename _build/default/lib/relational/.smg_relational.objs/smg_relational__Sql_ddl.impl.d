lib/relational/sql_ddl.ml: Array Buffer Hashtbl List Printf Schema String Value
