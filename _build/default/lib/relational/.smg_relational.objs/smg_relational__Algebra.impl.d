lib/relational/algebra.ml: Array Fmt Hashtbl Instance List Printf Schema String Value
