lib/relational/instance.mli: Format Schema Value
