lib/relational/algebra.mli: Format Instance Schema Value
