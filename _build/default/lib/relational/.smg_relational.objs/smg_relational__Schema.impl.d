lib/relational/schema.ml: Fmt Hashtbl List Option Printf String
