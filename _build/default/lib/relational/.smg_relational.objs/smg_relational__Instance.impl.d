lib/relational/instance.ml: Array Fmt Hashtbl List Map Printf Schema String Value
