(** Relational algebra: AST, pretty-printing, and an in-memory
    evaluator over {!Instance.t}.

    Joins are natural joins on shared column names; [Rename] is the tool
    for aligning join columns. Outer joins pad missing columns with fresh
    labelled nulls, which is how the paper's outer-join mappings
    (Example 1.2) materialise merged ISA hierarchies. *)

type operand = Col of string | Const of Value.t

type pred =
  | True
  | Eq of operand * operand
  | Neq of operand * operand
  | Lt of operand * operand
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type t =
  | Table of string
  | Select of pred * t
  | Project of string list * t
  | Rename of (string * string) list * t  (** [(old, new)] pairs *)
  | Join of t * t
  | Product of t * t
  | Union of t * t
  | Diff of t * t
  | LeftOuter of t * t
  | FullOuter of t * t

val columns : Schema.t -> t -> string list
(** Output header of the expression under the schema.
    @raise Invalid_argument on unknown tables/columns or on set
    operations over mismatched headers. *)

val eval : Schema.t -> Instance.t -> t -> Instance.relation
(** Evaluate with set semantics. Missing relations are empty. *)

val natural_join_cols : string list -> string list -> string list
(** Shared columns, in first-header order. *)

val pp : Format.formatter -> t -> unit
val pp_pred : Format.formatter -> pred -> unit
