(** SQL DDL rendering: turn {!Schema.t} values into executable
    [CREATE TABLE] statements (generic SQL-92 flavour), so scenarios can
    be materialised on a real database. *)

val column_type : Schema.col_type -> string
(** [TEXT] / [INTEGER] / [REAL] / [BOOLEAN]. *)

val create_table : Schema.t -> Schema.table -> string
(** One [CREATE TABLE] statement, with the primary key and the foreign
    keys whose referencing table this is. *)

val create_schema : Schema.t -> string
(** All tables (in an order that defines referenced tables first where
    the RIC graph is acyclic; cyclic references fall back to declaration
    order), separated by blank lines. *)

val insert_tuple : Schema.table -> Value.t array -> string
(** An [INSERT] statement for one tuple (labelled nulls render as SQL
    [NULL]). *)
