(** Relational schemas: tables with typed columns, primary keys, and
    referential integrity constraints (RICs, generalised foreign keys). *)

type col_type = TInt | TString | TFloat | TBool

type column = { col_name : string; col_type : col_type }

type table = {
  tbl_name : string;
  columns : column list;
  key : string list;  (** primary-key column names; may be empty *)
}

type ric = {
  ric_name : string;
  from_table : string;
  from_cols : string list;
  to_table : string;
  to_cols : string list;
}
(** [from_table.from_cols ⊆ to_table.to_cols], component-wise. *)

type t = { schema_name : string; tables : table list; rics : ric list }

val table : ?key:string list -> string -> (string * col_type) list -> table
(** Convenience constructor; by default the key is empty. *)

val col : string -> col_type -> column

val make : name:string -> table list -> ric list -> t
(** Validates and builds a schema.
    @raise Invalid_argument when table names collide, a key or RIC
    mentions an unknown table/column, or a RIC's column lists have
    different lengths. *)

val ric :
  name:string -> from_:string * string list -> to_:string * string list -> ric

val find_table : t -> string -> table option
val find_table_exn : t -> string -> table
val column_names : table -> string list
val has_column : table -> string -> bool
val column_type : table -> string -> col_type option

val rics_from : t -> string -> ric list
(** RICs whose [from_table] is the given table. *)

val rics_to : t -> string -> ric list

val equal_table : table -> table -> bool
val pp_table : Format.formatter -> table -> unit
val pp : Format.formatter -> t -> unit
