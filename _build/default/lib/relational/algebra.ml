type operand = Col of string | Const of Value.t

type pred =
  | True
  | Eq of operand * operand
  | Neq of operand * operand
  | Lt of operand * operand
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type t =
  | Table of string
  | Select of pred * t
  | Project of string list * t
  | Rename of (string * string) list * t
  | Join of t * t
  | Product of t * t
  | Union of t * t
  | Diff of t * t
  | LeftOuter of t * t
  | FullOuter of t * t

let natural_join_cols h1 h2 = List.filter (fun c -> List.mem c h2) h1

let rename_header pairs header =
  List.map
    (fun c ->
      match List.assoc_opt c pairs with Some c' -> c' | None -> c)
    header

let rec columns schema e =
  match e with
  | Table name -> Schema.column_names (Schema.find_table_exn schema name)
  | Select (_, e) -> columns schema e
  | Project (cols, e) ->
      let h = columns schema e in
      List.iter
        (fun c ->
          if not (List.mem c h) then
            invalid_arg (Printf.sprintf "project: unknown column %s" c))
        cols;
      cols
  | Rename (pairs, e) -> rename_header pairs (columns schema e)
  | Join (a, b) ->
      let ha = columns schema a and hb = columns schema b in
      ha @ List.filter (fun c -> not (List.mem c ha)) hb
  | Product (a, b) ->
      let ha = columns schema a and hb = columns schema b in
      List.iter
        (fun c ->
          if List.mem c ha then
            invalid_arg (Printf.sprintf "product: column clash %s" c))
        hb;
      ha @ hb
  | Union (a, b) | Diff (a, b) ->
      let ha = columns schema a and hb = columns schema b in
      if List.sort compare ha <> List.sort compare hb then
        invalid_arg "set operation over mismatched headers";
      ha
  | LeftOuter (a, b) | FullOuter (a, b) ->
      let ha = columns schema a and hb = columns schema b in
      ha @ List.filter (fun c -> not (List.mem c ha)) hb

let index_of header c =
  let rec go k = function
    | [] -> invalid_arg (Printf.sprintf "eval: unknown column %s" c)
    | h :: t -> if String.equal h c then k else go (k + 1) t
  in
  go 0 header

let eval_operand header tup = function
  | Col c -> tup.(index_of header c)
  | Const v -> v

let rec eval_pred header tup = function
  | True -> true
  | Eq (a, b) ->
      Value.equal (eval_operand header tup a) (eval_operand header tup b)
  | Neq (a, b) ->
      not (Value.equal (eval_operand header tup a) (eval_operand header tup b))
  | Lt (a, b) ->
      Value.compare (eval_operand header tup a) (eval_operand header tup b) < 0
  | And (p, q) -> eval_pred header tup p && eval_pred header tup q
  | Or (p, q) -> eval_pred header tup p || eval_pred header tup q
  | Not p -> not (eval_pred header tup p)

let dedup (r : Instance.relation) : Instance.relation =
  let seen = Hashtbl.create 64 in
  let tuples =
    List.filter
      (fun tup ->
        let k =
          String.concat "\x00"
            (Array.to_list (Array.map Value.to_string tup))
        in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.replace seen k ();
          true
        end)
      r.tuples
  in
  { r with tuples }

let join_generic ~kind (a : Instance.relation) (b : Instance.relation) :
    Instance.relation =
  let shared = natural_join_cols a.header b.header in
  let b_extra = List.filter (fun c -> not (List.mem c shared)) b.header in
  let header = a.header @ b_extra in
  let a_idx = List.map (index_of a.header) shared in
  let b_idx = List.map (index_of b.header) shared in
  let b_extra_idx = List.map (index_of b.header) b_extra in
  (* Hash b tuples by shared-column key. *)
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun tb ->
      let k =
        String.concat "\x00"
          (List.map (fun i -> Value.to_string tb.(i)) b_idx)
      in
      Hashtbl.add tbl k tb)
    b.tuples;
  let matched_b = Hashtbl.create 64 in
  let rows = ref [] in
  List.iter
    (fun ta ->
      let k =
        String.concat "\x00"
          (List.map (fun i -> Value.to_string ta.(i)) a_idx)
      in
      let matches = Hashtbl.find_all tbl k in
      if matches = [] then begin
        match kind with
        | `Inner -> ()
        | `Left | `Full ->
            let pad = List.map (fun _ -> Value.fresh_null ()) b_extra_idx in
            rows := Array.append ta (Array.of_list pad) :: !rows
      end
      else
        List.iter
          (fun tb ->
            Hashtbl.replace matched_b
              (String.concat "\x00"
                 (Array.to_list (Array.map Value.to_string tb)))
              ();
            let extra = List.map (fun i -> tb.(i)) b_extra_idx in
            rows := Array.append ta (Array.of_list extra) :: !rows)
          matches)
    a.tuples;
  (match kind with
  | `Full ->
      (* Unmatched b tuples, padded on the a-only columns. *)
      let a_only = List.filter (fun c -> not (List.mem c shared)) a.header in
      List.iter
        (fun tb ->
          let key =
            String.concat "\x00"
              (Array.to_list (Array.map Value.to_string tb))
          in
          if not (Hashtbl.mem matched_b key) then begin
            let cell c =
              if List.mem c a_only then Value.fresh_null ()
              else tb.(index_of b.header c)
            in
            rows := Array.of_list (List.map cell header) :: !rows
          end)
        b.tuples
  | `Inner | `Left -> ());
  dedup { header; tuples = List.rev !rows }

let rec eval schema inst e : Instance.relation =
  match e with
  | Table name ->
      let t = Schema.find_table_exn schema name in
      Instance.relation_or_empty inst name ~header:(Schema.column_names t)
  | Select (p, e) ->
      let r = eval schema inst e in
      { r with tuples = List.filter (fun t -> eval_pred r.header t p) r.tuples }
  | Project (cols, e) ->
      let r = eval schema inst e in
      let idx = List.map (index_of r.header) cols in
      dedup
        {
          header = cols;
          tuples =
            List.map
              (fun t -> Array.of_list (List.map (fun i -> t.(i)) idx))
              r.tuples;
        }
  | Rename (pairs, e) ->
      let r = eval schema inst e in
      { r with header = rename_header pairs r.header }
  | Join (a, b) -> join_generic ~kind:`Inner (eval schema inst a) (eval schema inst b)
  | Product (a, b) ->
      let ra = eval schema inst a and rb = eval schema inst b in
      let header = ra.header @ rb.header in
      let tuples =
        List.concat_map
          (fun ta -> List.map (fun tb -> Array.append ta tb) rb.tuples)
          ra.tuples
      in
      dedup { header; tuples }
  | Union (a, b) ->
      let ra = eval schema inst a and rb = eval schema inst b in
      let rb_aligned =
        List.map (fun t -> Instance.project_tuple rb t ra.header) rb.tuples
      in
      dedup { ra with tuples = ra.tuples @ rb_aligned }
  | Diff (a, b) ->
      let ra = eval schema inst a and rb = eval schema inst b in
      let keys = Hashtbl.create 64 in
      List.iter
        (fun t ->
          let t = Instance.project_tuple rb t ra.header in
          Hashtbl.replace keys
            (String.concat "\x00"
               (Array.to_list (Array.map Value.to_string t)))
            ())
        rb.tuples;
      {
        ra with
        tuples =
          List.filter
            (fun t ->
              not
                (Hashtbl.mem keys
                   (String.concat "\x00"
                      (Array.to_list (Array.map Value.to_string t)))))
            ra.tuples;
      }
  | LeftOuter (a, b) ->
      join_generic ~kind:`Left (eval schema inst a) (eval schema inst b)
  | FullOuter (a, b) ->
      join_generic ~kind:`Full (eval schema inst a) (eval schema inst b)

let pp_operand ppf = function
  | Col c -> Fmt.string ppf c
  | Const v -> Value.pp ppf v

let rec pp_pred ppf = function
  | True -> Fmt.string ppf "true"
  | Eq (a, b) -> Fmt.pf ppf "%a = %a" pp_operand a pp_operand b
  | Neq (a, b) -> Fmt.pf ppf "%a <> %a" pp_operand a pp_operand b
  | Lt (a, b) -> Fmt.pf ppf "%a < %a" pp_operand a pp_operand b
  | And (p, q) -> Fmt.pf ppf "(%a ∧ %a)" pp_pred p pp_pred q
  | Or (p, q) -> Fmt.pf ppf "(%a ∨ %a)" pp_pred p pp_pred q
  | Not p -> Fmt.pf ppf "¬%a" pp_pred p

let rec pp ppf = function
  | Table name -> Fmt.string ppf name
  | Select (p, e) -> Fmt.pf ppf "σ[%a](%a)" pp_pred p pp e
  | Project (cols, e) ->
      Fmt.pf ppf "π[%a](%a)" Fmt.(list ~sep:comma string) cols pp e
  | Rename (pairs, e) ->
      Fmt.pf ppf "ρ[%a](%a)"
        Fmt.(
          list ~sep:comma (fun ppf (o, n) -> Fmt.pf ppf "%s→%s" o n))
        pairs pp e
  | Join (a, b) -> Fmt.pf ppf "(%a ⋈ %a)" pp a pp b
  | Product (a, b) -> Fmt.pf ppf "(%a × %a)" pp a pp b
  | Union (a, b) -> Fmt.pf ppf "(%a ∪ %a)" pp a pp b
  | Diff (a, b) -> Fmt.pf ppf "(%a − %a)" pp a pp b
  | LeftOuter (a, b) -> Fmt.pf ppf "(%a ⟕ %a)" pp a pp b
  | FullOuter (a, b) -> Fmt.pf ppf "(%a ⟗ %a)" pp a pp b
