type col_type = TInt | TString | TFloat | TBool

type column = { col_name : string; col_type : col_type }

type table = { tbl_name : string; columns : column list; key : string list }

type ric = {
  ric_name : string;
  from_table : string;
  from_cols : string list;
  to_table : string;
  to_cols : string list;
}

type t = { schema_name : string; tables : table list; rics : ric list }

let col col_name col_type = { col_name; col_type }

let table ?(key = []) tbl_name cols =
  { tbl_name; columns = List.map (fun (n, ty) -> col n ty) cols; key }

let ric ~name ~from_:(from_table, from_cols) ~to_:(to_table, to_cols) =
  { ric_name = name; from_table; from_cols; to_table; to_cols }

let column_names t = List.map (fun c -> c.col_name) t.columns
let has_column t name = List.exists (fun c -> String.equal c.col_name name) t.columns

let column_type t name =
  List.find_opt (fun c -> String.equal c.col_name name) t.columns
  |> Option.map (fun c -> c.col_type)

let find_table s name =
  List.find_opt (fun t -> String.equal t.tbl_name name) s.tables

let find_table_exn s name =
  match find_table s name with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "schema %s: no table %s" s.schema_name name)

let validate s =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun t ->
      if Hashtbl.mem seen t.tbl_name then
        invalid_arg (Printf.sprintf "duplicate table %s" t.tbl_name);
      Hashtbl.replace seen t.tbl_name ();
      let cols = Hashtbl.create 8 in
      List.iter
        (fun c ->
          if Hashtbl.mem cols c.col_name then
            invalid_arg
              (Printf.sprintf "table %s: duplicate column %s" t.tbl_name
                 c.col_name);
          Hashtbl.replace cols c.col_name ())
        t.columns;
      List.iter
        (fun k ->
          if not (Hashtbl.mem cols k) then
            invalid_arg
              (Printf.sprintf "table %s: key column %s missing" t.tbl_name k))
        t.key)
    s.tables;
  List.iter
    (fun r ->
      let from_t = find_table_exn s r.from_table
      and to_t = find_table_exn s r.to_table in
      if List.length r.from_cols <> List.length r.to_cols then
        invalid_arg (Printf.sprintf "ric %s: arity mismatch" r.ric_name);
      if r.from_cols = [] then
        invalid_arg (Printf.sprintf "ric %s: empty column list" r.ric_name);
      List.iter
        (fun c ->
          if not (has_column from_t c) then
            invalid_arg
              (Printf.sprintf "ric %s: %s has no column %s" r.ric_name
                 r.from_table c))
        r.from_cols;
      List.iter
        (fun c ->
          if not (has_column to_t c) then
            invalid_arg
              (Printf.sprintf "ric %s: %s has no column %s" r.ric_name
                 r.to_table c))
        r.to_cols)
    s.rics

let make ~name tables rics =
  let s = { schema_name = name; tables; rics } in
  validate s;
  s

let rics_from s name =
  List.filter (fun r -> String.equal r.from_table name) s.rics

let rics_to s name = List.filter (fun r -> String.equal r.to_table name) s.rics

let equal_table a b =
  String.equal a.tbl_name b.tbl_name
  && a.key = b.key
  && List.length a.columns = List.length b.columns
  && List.for_all2
       (fun x y -> String.equal x.col_name y.col_name && x.col_type = y.col_type)
       a.columns b.columns

let pp_col_type ppf = function
  | TInt -> Fmt.string ppf "int"
  | TString -> Fmt.string ppf "string"
  | TFloat -> Fmt.string ppf "float"
  | TBool -> Fmt.string ppf "bool"

let pp_table ppf t =
  let pp_col ppf c =
    if List.mem c.col_name t.key then
      Fmt.pf ppf "%s*:%a" c.col_name pp_col_type c.col_type
    else Fmt.pf ppf "%s:%a" c.col_name pp_col_type c.col_type
  in
  Fmt.pf ppf "%s(%a)" t.tbl_name (Fmt.list ~sep:Fmt.comma pp_col) t.columns

let pp_ric ppf r =
  Fmt.pf ppf "%s: %s.[%a] ⊆ %s.[%a]" r.ric_name r.from_table
    Fmt.(list ~sep:comma string)
    r.from_cols r.to_table
    Fmt.(list ~sep:comma string)
    r.to_cols

let pp ppf s =
  Fmt.pf ppf "@[<v>schema %s@,%a@,%a@]" s.schema_name
    (Fmt.list ~sep:Fmt.cut pp_table)
    s.tables
    (Fmt.list ~sep:Fmt.cut pp_ric)
    s.rics
