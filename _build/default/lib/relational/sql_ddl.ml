let column_type = function
  | Schema.TString -> "TEXT"
  | Schema.TInt -> "INTEGER"
  | Schema.TFloat -> "REAL"
  | Schema.TBool -> "BOOLEAN"

let create_table (schema : Schema.t) (t : Schema.table) =
  let cols =
    List.map
      (fun (c : Schema.column) ->
        Printf.sprintf "  %s %s" c.Schema.col_name (column_type c.Schema.col_type))
      t.Schema.columns
  in
  let pk =
    match t.Schema.key with
    | [] -> []
    | key -> [ Printf.sprintf "  PRIMARY KEY (%s)" (String.concat ", " key) ]
  in
  let fks =
    List.filter_map
      (fun (r : Schema.ric) ->
        if String.equal r.Schema.from_table t.Schema.tbl_name then
          Some
            (Printf.sprintf "  FOREIGN KEY (%s) REFERENCES %s (%s)"
               (String.concat ", " r.Schema.from_cols)
               r.Schema.to_table
               (String.concat ", " r.Schema.to_cols))
        else None)
      schema.Schema.rics
  in
  Printf.sprintf "CREATE TABLE %s (\n%s\n);" t.Schema.tbl_name
    (String.concat ",\n" (cols @ pk @ fks))

let create_schema (s : Schema.t) =
  (* referenced-first topological order; cycles keep declaration order *)
  let tables = s.Schema.tables in
  let depends_on (t : Schema.table) =
    List.filter_map
      (fun (r : Schema.ric) ->
        if
          String.equal r.Schema.from_table t.Schema.tbl_name
          && not (String.equal r.Schema.to_table t.Schema.tbl_name)
        then Some r.Schema.to_table
        else None)
      s.Schema.rics
  in
  let emitted = Hashtbl.create 16 in
  let order = ref [] in
  let rec emit ?(stack = []) (t : Schema.table) =
    if (not (Hashtbl.mem emitted t.Schema.tbl_name))
       && not (List.mem t.Schema.tbl_name stack)
    then begin
      List.iter
        (fun dep ->
          match Schema.find_table s dep with
          | Some dt -> emit ~stack:(t.Schema.tbl_name :: stack) dt
          | None -> ())
        (depends_on t);
      if not (Hashtbl.mem emitted t.Schema.tbl_name) then begin
        Hashtbl.replace emitted t.Schema.tbl_name ();
        order := t :: !order
      end
    end
  in
  List.iter emit tables;
  String.concat "\n\n" (List.map (create_table s) (List.rev !order))

let sql_value = function
  | Value.VInt i -> string_of_int i
  | Value.VFloat f -> string_of_float f
  | Value.VBool b -> if b then "TRUE" else "FALSE"
  | Value.VString str ->
      (* escape single quotes *)
      let b = Buffer.create (String.length str + 2) in
      Buffer.add_char b '\'';
      String.iter
        (fun c ->
          if c = '\'' then Buffer.add_string b "''" else Buffer.add_char b c)
        str;
      Buffer.add_char b '\'';
      Buffer.contents b
  | Value.VNull _ -> "NULL"

let insert_tuple (t : Schema.table) tup =
  Printf.sprintf "INSERT INTO %s (%s) VALUES (%s);" t.Schema.tbl_name
    (String.concat ", " (Schema.column_names t))
    (String.concat ", " (List.map sql_value (Array.to_list tup)))
