type tree = { root : int; edge_ids : int list; cost : float }

let eps = 1e-9

(* Dreyfus–Wagner for directed Steiner arborescence.

   A(X, v) = cheapest arborescence rooted at v reaching terminal set X.
     A({t}, v)      = d(v, t)
     A(X, v), |X|>1 = min_w ( d(v, w) + min_{0 ⊂ X1 ⊂ X} A(X1, w) + A(X\X1, w) )

   Terminal sets are bitmasks over the terminal list. Reconstruction
   records, per (X, v), either a Via(w, X1) split or the direct path for
   singletons. *)

type choice =
  | Leaf of int (* terminal node: shortest path v -> t *)
  | Via of int * int (* (w, submask): path v -> w, then split X1 / X\X1 at w *)

let arborescence_all g ~cost ~terminals =
  (* Shared DP over all roots; returns a function root -> tree option. *)
  let n = Digraph.n_nodes g in
  let terms = Array.of_list terminals in
  let k = Array.length terms in
  if k = 0 then invalid_arg "Steiner: empty terminal list";
  let sp = Dijkstra.all_pairs g ~cost in
  let d u v = Option.value ~default:infinity (Dijkstra.dist sp.(u) v) in
  let full = (1 lsl k) - 1 in
  (* a.(mask).(v) : cost; ch.(mask).(v) : reconstruction choice *)
  let a = Array.make_matrix (full + 1) n infinity in
  let ch = Array.make_matrix (full + 1) n (Leaf (-1)) in
  for i = 0 to k - 1 do
    let mask = 1 lsl i in
    for v = 0 to n - 1 do
      a.(mask).(v) <- d v terms.(i);
      ch.(mask).(v) <- Leaf terms.(i)
    done
  done;
  for mask = 1 to full do
    if mask land (mask - 1) <> 0 then begin
      (* |mask| >= 2: first the best split at each node w *)
      let split_cost = Array.make n infinity in
      let split_sub = Array.make n 0 in
      let sub = ref ((mask - 1) land mask) in
      while !sub > 0 do
        let other = mask lxor !sub in
        (* Consider each unordered partition once: sub < other. *)
        if !sub < other then
          for w = 0 to n - 1 do
            let c = a.(!sub).(w) +. a.(other).(w) in
            if c < split_cost.(w) then begin
              split_cost.(w) <- c;
              split_sub.(w) <- !sub
            end
          done;
        sub := (!sub - 1) land mask
      done;
      (* Then the cheapest w reached from each v.  This is itself a
         shortest-path relaxation: a.(mask).(v) = min_w (d v w + split(w)).
         With all-pairs distances available we do it directly. *)
      for v = 0 to n - 1 do
        for w = 0 to n - 1 do
          if split_cost.(w) < infinity then begin
            let c = d v w +. split_cost.(w) in
            if c < a.(mask).(v) then begin
              a.(mask).(v) <- c;
              ch.(mask).(v) <- Via (w, split_sub.(w))
            end
          end
        done
      done
    end
  done;
  let reconstruct root =
    if a.(full).(root) = infinity then None
    else begin
      let edges = Hashtbl.create 16 in
      let add_path u v =
        match Dijkstra.path_edges sp.(u) v with
        | None -> assert false
        | Some ids -> List.iter (fun id -> Hashtbl.replace edges id ()) ids
      in
      let rec go mask v =
        match ch.(mask).(v) with
        | Leaf t -> add_path v t
        | Via (w, sub) ->
            add_path v w;
            go sub w;
            go (mask lxor sub) w
      in
      go full root;
      let edge_ids =
        Hashtbl.fold (fun id () acc -> id :: acc) edges []
        |> List.sort compare
      in
      Some { root; edge_ids; cost = a.(full).(root) }
    end
  in
  reconstruct

let arborescence g ~cost ~root ~terminals =
  (arborescence_all g ~cost ~terminals) root

let minimal_trees g ~cost ~roots ~terminals =
  let solve = arborescence_all g ~cost ~terminals in
  let candidates = List.filter_map solve roots in
  match candidates with
  | [] -> []
  | _ ->
      let best =
        List.fold_left (fun m t -> min m t.cost) infinity candidates
      in
      List.filter (fun t -> t.cost <= best +. eps) candidates

let tree_nodes g t =
  let tbl = Hashtbl.create 16 in
  Hashtbl.replace tbl t.root ();
  List.iter
    (fun id ->
      let e = Digraph.edge g id in
      Hashtbl.replace tbl e.src ();
      Hashtbl.replace tbl e.dst ())
    t.edge_ids;
  Hashtbl.fold (fun v () acc -> v :: acc) tbl [] |> List.sort compare
