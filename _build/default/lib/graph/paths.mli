(** Bounded enumeration of simple paths, with lexicographic costs.

    Used to find "minimally lossy" connections (§3.3 of the paper):
    among paths between two marked nodes we prefer the ones with the
    fewest functional-direction reversals, breaking ties by length. *)

type 'e path = {
  edge_ids : int list;  (** in path order *)
  nodes : int list;     (** [src; ...; dst], one more than edges *)
}

val simple_paths :
  'e Digraph.t ->
  src:int ->
  dst:int ->
  max_len:int ->
  ok:('e Digraph.edge -> bool) ->
  'e path list
(** All simple (node-repetition-free) paths from [src] to [dst] of at
    most [max_len] edges, using only edges accepted by [ok]. The
    degenerate [src = dst] case yields the empty path. *)

val best_paths :
  'e Digraph.t ->
  src:int ->
  dst:int ->
  max_len:int ->
  ok:('e Digraph.edge -> bool) ->
  score:('e path -> float) ->
  'e path list
(** The simple paths minimising [score] (all ties kept). *)
