(** Exact minimum-cost Steiner arborescences (Dreyfus–Wagner).

    Used to compute the paper's "minimal functional trees": trees rooted
    at a node from which every terminal is reached along (cheap,
    typically functional) directed paths. Terminal counts here are small
    (≤ 10 or so), which is exactly the regime where the Dreyfus–Wagner
    dynamic program over terminal subsets is practical. *)

type tree = {
  root : int;
  edge_ids : int list;  (** edges of the arborescence, deduplicated *)
  cost : float;
}

val arborescence :
  'e Digraph.t ->
  cost:('e Digraph.edge -> float option) ->
  root:int ->
  terminals:int list ->
  tree option
(** Minimum-cost arborescence rooted at [root] reaching every terminal,
    or [None] if some terminal is unreachable. Terminals may include the
    root. @raise Invalid_argument on an empty terminal list. *)

val minimal_trees :
  'e Digraph.t ->
  cost:('e Digraph.edge -> float option) ->
  roots:int list ->
  terminals:int list ->
  tree list
(** Arborescences over every candidate root, keeping exactly the ones
    whose cost ties the global minimum (within [eps = 1e-9]). Empty if no
    root reaches all terminals. *)

val tree_nodes : 'e Digraph.t -> tree -> int list
(** All nodes touched by the tree (root included), ascending. *)
