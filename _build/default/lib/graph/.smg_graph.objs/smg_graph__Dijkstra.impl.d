lib/graph/dijkstra.ml: Array Digraph List
