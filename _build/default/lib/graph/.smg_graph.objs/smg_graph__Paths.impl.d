lib/graph/paths.ml: Digraph Hashtbl List
