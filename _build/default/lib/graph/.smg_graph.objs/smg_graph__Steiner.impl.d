lib/graph/steiner.ml: Array Digraph Dijkstra Hashtbl List Option
