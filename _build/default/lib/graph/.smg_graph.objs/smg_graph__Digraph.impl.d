lib/graph/digraph.ml: Array Fun Hashtbl List Option Printf
