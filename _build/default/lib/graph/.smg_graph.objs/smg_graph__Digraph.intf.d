lib/graph/digraph.mli:
