type 'e edge = { id : int; src : int; dst : int; lbl : 'e }

type 'e t = {
  n : int;
  edge_arr : 'e edge array;
  out_arr : int list array;  (* edge ids, ascending *)
  in_arr : int list array;
}

let make ~n triples =
  let check v =
    if v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Digraph.make: node %d outside 0..%d" v (n - 1))
  in
  let edge_arr =
    Array.of_list
      (List.mapi
         (fun id (src, dst, lbl) ->
           check src;
           check dst;
           { id; src; dst; lbl })
         triples)
  in
  let out_arr = Array.make n [] and in_arr = Array.make n [] in
  (* Fill in reverse so lists end up in ascending id order. *)
  for i = Array.length edge_arr - 1 downto 0 do
    let e = edge_arr.(i) in
    out_arr.(e.src) <- e.id :: out_arr.(e.src);
    in_arr.(e.dst) <- e.id :: in_arr.(e.dst)
  done;
  { n; edge_arr; out_arr; in_arr }

let n_nodes g = g.n
let n_edges g = Array.length g.edge_arr
let edge g id = g.edge_arr.(id)
let edges g = Array.to_list g.edge_arr
let out_edges g v = List.map (fun id -> g.edge_arr.(id)) g.out_arr.(v)
let in_edges g v = List.map (fun id -> g.edge_arr.(id)) g.in_arr.(v)
let nodes g = List.init g.n Fun.id
let fold_edges f acc g = Array.fold_left f acc g.edge_arr

let map_labels f g =
  {
    g with
    edge_arr = Array.map (fun e -> { e with lbl = f e.lbl }) g.edge_arr;
  }

let reverse g =
  let edge_arr =
    Array.map (fun e -> { e with src = e.dst; dst = e.src }) g.edge_arr
  in
  { n = g.n; edge_arr; out_arr = g.in_arr; in_arr = g.out_arr }

let is_tree_under g ~root ~edge_ids =
  let in_deg = Hashtbl.create 16 in
  let ok =
    List.for_all
      (fun id ->
        let e = g.edge_arr.(id) in
        let d = Option.value ~default:0 (Hashtbl.find_opt in_deg e.dst) in
        Hashtbl.replace in_deg e.dst (d + 1);
        d = 0 && e.dst <> root)
      edge_ids
  in
  if not ok then false
  else begin
    (* Reachability from the root through the subset. *)
    let chosen = Hashtbl.create 16 in
    List.iter (fun id -> Hashtbl.replace chosen id ()) edge_ids;
    let visited = Hashtbl.create 16 in
    let rec go v =
      if not (Hashtbl.mem visited v) then begin
        Hashtbl.replace visited v ();
        List.iter
          (fun e -> if Hashtbl.mem chosen e.id then go e.dst)
          (out_edges g v)
      end
    in
    go root;
    List.for_all
      (fun id ->
        let e = g.edge_arr.(id) in
        Hashtbl.mem visited e.src && Hashtbl.mem visited e.dst)
      edge_ids
  end
