(** Single-source shortest paths with per-edge optional costs.

    An edge whose cost function returns [None] is not traversable; costs
    must be non-negative. *)

type result
(** Shortest-path tree from one source. *)

val run : 'e Digraph.t -> cost:('e Digraph.edge -> float option) -> src:int -> result
(** Dijkstra from [src]. *)

val dist : result -> int -> float option
(** [dist r v] is the cost of the cheapest path to [v], or [None] if
    unreachable. *)

val path_edges : result -> int -> int list option
(** Edge identifiers of a cheapest path from the source to [v], in path
    order, or [None] if unreachable. The path to the source itself is
    [Some []]. *)

val all_pairs :
  'e Digraph.t ->
  cost:('e Digraph.edge -> float option) ->
  result array
(** One {!result} per source node, indexed by node. *)
