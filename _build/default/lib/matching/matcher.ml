module Schema = Smg_relational.Schema
module Mapping = Smg_cq.Mapping

let levenshtein a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let prev = Array.init (lb + 1) Fun.id in
    let cur = Array.make (lb + 1) 0 in
    for i = 1 to la do
      cur.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

let tokens s =
  let out = ref [] and buf = Buffer.create 8 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := String.lowercase_ascii (Buffer.contents buf) :: !out;
      Buffer.clear buf
    end
  in
  String.iteri
    (fun i c ->
      if c = '_' || c = '.' || c = '-' || c = ' ' then flush ()
      else begin
        if
          c >= 'A' && c <= 'Z' && i > 0
          && s.[i - 1] >= 'a'
          && s.[i - 1] <= 'z'
        then flush ();
        Buffer.add_char buf c
      end)
    s;
  flush ();
  List.rev !out

let norm s = String.concat "" (tokens s)

let char_similarity a b =
  let a = norm a and b = norm b in
  let la = String.length a and lb = String.length b in
  if la = 0 && lb = 0 then 1.
  else
    let d = levenshtein a b in
    1. -. (float_of_int d /. float_of_int (max la lb))

let jaccard a b =
  let ta = List.sort_uniq compare (tokens a)
  and tb = List.sort_uniq compare (tokens b) in
  match (ta, tb) with
  | [], [] -> 1.
  | _ ->
      let inter = List.length (List.filter (fun t -> List.mem t tb) ta) in
      let union = List.length (List.sort_uniq compare (ta @ tb)) in
      float_of_int inter /. float_of_int union

let similarity a b =
  if String.equal (norm a) (norm b) then 1.
  else (0.5 *. char_similarity a b) +. (0.5 *. jaccard a b)

type match_result = { corr : Mapping.corr; confidence : float }

let propose ?(threshold = 0.55) ~source ~target () =
  let columns (s : Schema.t) =
    List.concat_map
      (fun (t : Schema.table) ->
        List.map (fun c -> (t.Schema.tbl_name, c)) (Schema.column_names t))
      s.Schema.tables
  in
  let src_cols = columns source and tgt_cols = columns target in
  let score (st, sc) (tt, tc) =
    (* column name dominates; the table context breaks ties *)
    (0.8 *. similarity sc tc) +. (0.2 *. similarity st tt)
  in
  List.filter_map
    (fun tgt ->
      let best =
        List.fold_left
          (fun acc src ->
            let s = score src tgt in
            match acc with
            | Some (_, s') when s' >= s -> acc
            | _ -> Some (src, s))
          None src_cols
      in
      match best with
      | Some (src, s) when s >= threshold ->
          Some { corr = Mapping.corr ~src ~tgt; confidence = s }
      | Some _ | None -> None)
    tgt_cols
  |> List.sort (fun a b -> compare b.confidence a.confidence)
