(** A simple schema matcher proposing column correspondences — the
    "first phase" tool the paper assumes exists ([Rahm & Bernstein,
    VLDBJ'01] survey). Name-based: tokenised column and table names
    compared with normalised Levenshtein similarity plus token overlap.

    This is intentionally basic; the paper's contribution starts *after*
    correspondences exist. The matcher makes the examples and the CLI
    self-contained. *)

val levenshtein : string -> string -> int

val similarity : string -> string -> float
(** In [0, 1]: 1 for equal strings after normalisation. Combines
    token-set overlap (Jaccard) with character-level closeness. *)

val tokens : string -> string list
(** Split on underscores, dots and camelCase boundaries; lowercase. *)

type match_result = {
  corr : Smg_cq.Mapping.corr;
  confidence : float;
}

val propose :
  ?threshold:float ->
  source:Smg_relational.Schema.t ->
  target:Smg_relational.Schema.t ->
  unit ->
  match_result list
(** Correspondence proposals with confidence ≥ [threshold] (default
    0.55), each target column matched to its best source column,
    sorted by decreasing confidence. *)
