lib/matching/matcher.ml: Array Buffer Fun List Smg_cq Smg_relational String
