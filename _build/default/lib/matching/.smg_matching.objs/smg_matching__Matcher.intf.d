lib/matching/matcher.mli: Smg_cq Smg_relational
