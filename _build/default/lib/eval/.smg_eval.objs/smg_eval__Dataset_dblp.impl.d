lib/eval/dataset_dblp.ml: Lazy Scenario Smg_cm Smg_core Smg_cq Smg_er2rel Smg_relational
