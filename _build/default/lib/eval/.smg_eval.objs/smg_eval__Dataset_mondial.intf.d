lib/eval/dataset_mondial.mli: Scenario
