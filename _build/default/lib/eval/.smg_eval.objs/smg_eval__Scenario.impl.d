lib/eval/scenario.ml: List Printf Smg_cm Smg_core Smg_cq Smg_relational
