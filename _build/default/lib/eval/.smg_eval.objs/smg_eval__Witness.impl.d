lib/eval/witness.ml: Array Experiments Fmt List Printf Scenario Smg_core Smg_cq Smg_relational
