lib/eval/dataset_ut.mli: Scenario
