lib/eval/datasets.mli: Scenario
