lib/eval/ablation.ml: Experiments Fmt List Measures Scenario Smg_cm Smg_core Smg_cq Smg_er2rel String
