lib/eval/witness.mli: Format Scenario Smg_relational
