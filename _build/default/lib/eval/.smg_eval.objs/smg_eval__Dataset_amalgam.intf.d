lib/eval/dataset_amalgam.mli: Scenario
