lib/eval/experiments.ml: Fmt List Measures Scenario Smg_cm Smg_core Smg_cq Smg_relational Smg_ric String Unix
