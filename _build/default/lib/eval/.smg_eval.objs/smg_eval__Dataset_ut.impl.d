lib/eval/dataset_ut.ml: Lazy Scenario Smg_cm Smg_core Smg_cq Smg_er2rel Smg_relational Smg_semantics
