lib/eval/scenario.mli: Smg_cm Smg_core Smg_cq Smg_relational
