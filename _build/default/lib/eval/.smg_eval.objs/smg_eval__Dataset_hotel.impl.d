lib/eval/dataset_hotel.ml: Lazy Scenario Smg_cm Smg_core Smg_cq Smg_er2rel
