lib/eval/dataset_hotel.mli: Scenario
