lib/eval/measures.ml: List Smg_cq
