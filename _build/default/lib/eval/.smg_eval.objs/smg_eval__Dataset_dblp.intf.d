lib/eval/dataset_dblp.mli: Scenario
