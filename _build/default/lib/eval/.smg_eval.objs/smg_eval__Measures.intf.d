lib/eval/measures.mli: Smg_cq Smg_relational
