lib/eval/dataset_network.mli: Scenario
