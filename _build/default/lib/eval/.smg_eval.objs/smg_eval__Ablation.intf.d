lib/eval/ablation.mli: Format Scenario Smg_core
