lib/eval/dataset_network.ml: Lazy Scenario Smg_cm Smg_core Smg_cq Smg_er2rel
