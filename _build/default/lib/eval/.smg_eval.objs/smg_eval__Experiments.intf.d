lib/eval/experiments.mli: Format Measures Scenario Smg_core Smg_cq
