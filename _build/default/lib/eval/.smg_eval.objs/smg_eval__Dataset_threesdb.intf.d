lib/eval/dataset_threesdb.mli: Scenario
