module Schema = Smg_relational.Schema
module Cml = Smg_cm.Cml
module Cardinality = Smg_cm.Cardinality
module Design = Smg_er2rel.Design
module Reverse = Smg_er2rel.Reverse
module Discover = Smg_core.Discover

(* ---- 3Sdb1: forward-engineered ER model ---- *)

let threesdb1_cm =
  Cml.make ~name:"threesdb1"
    ~binaries:
      [
        Cml.functional ~total:true "takenFrom" ~src:"Sample" ~dst:"Tissue";
        Cml.functional "donatedBy" ~src:"Sample" ~dst:"Donor";
        Cml.functional "probeFor" ~src:"Probe" ~dst:"Gene";
      ]
    ~reified:
      [
        Cml.reified ~attrs:[ "level" ] "expression"
          [
            ("expr_sample", "Sample", Cardinality.many);
            ("expr_gene", "Gene", Cardinality.many);
          ];
        Cml.reified ~attrs:[ "hdate" ] "hybridization"
          [
            ("hyb_sample", "Sample", Cardinality.many);
            ("hyb_array", "Microarray", Cardinality.many);
            ("hyb_protocol", "Protocol", Cardinality.many);
          ];
      ]
    [
      Cml.cls ~id:[ "sid" ] "Sample" [ "sid" ];
      Cml.cls ~id:[ "gid" ] "Gene" [ "gid"; "symbol" ];
      Cml.cls ~id:[ "tname" ] "Tissue" [ "tname" ];
      Cml.cls ~id:[ "maid" ] "Microarray" [ "maid"; "vendor" ];
      Cml.cls ~id:[ "protoname" ] "Protocol" [ "protoname" ];
      Cml.cls ~id:[ "dname" ] "Donor" [ "dname" ];
      Cml.cls ~id:[ "pbid" ] "Probe" [ "pbid" ];
    ]

let threesdb1 = lazy (Design.design threesdb1_cm)

(* ---- 3Sdb2: coarser second version, reverse-engineered CM ---- *)

let threesdb2_schema =
  Schema.make ~name:"threesdb2"
    [
      Schema.table ~key:[ "sampleid" ] "samples"
        [
          ("sampleid", Schema.TString);
          ("tissue", Schema.TString);
          ("donor", Schema.TString);
        ];
      Schema.table ~key:[ "geneid" ] "genes"
        [ ("geneid", Schema.TString); ("sym", Schema.TString) ];
      Schema.table ~key:[ "sampleid"; "geneid" ] "expr"
        [
          ("sampleid", Schema.TString);
          ("geneid", Schema.TString);
          ("lvl", Schema.TString);
        ];
      Schema.table ~key:[ "sampleid"; "arrayid"; "protoname" ] "hyb"
        [
          ("sampleid", Schema.TString);
          ("arrayid", Schema.TString);
          ("protoname", Schema.TString);
          ("hdate", Schema.TString);
        ];
      Schema.table ~key:[ "arrayid" ] "arrays"
        [ ("arrayid", Schema.TString); ("maker", Schema.TString) ];
      Schema.table ~key:[ "protoname" ] "protocols" [ ("protoname", Schema.TString) ];
      Schema.table ~key:[ "tname" ] "tissues" [ ("tname", Schema.TString) ];
      Schema.table ~key:[ "dname" ] "donors" [ ("dname", Schema.TString) ];
      Schema.table ~key:[ "probeid" ] "probes"
        [ ("probeid", Schema.TString); ("geneid", Schema.TString) ];
    ]
    [
      Schema.ric ~name:"samples_tissue" ~from_:("samples", [ "tissue" ]) ~to_:("tissues", [ "tname" ]);
      Schema.ric ~name:"samples_donor" ~from_:("samples", [ "donor" ]) ~to_:("donors", [ "dname" ]);
      Schema.ric ~name:"expr_sample" ~from_:("expr", [ "sampleid" ]) ~to_:("samples", [ "sampleid" ]);
      Schema.ric ~name:"expr_gene" ~from_:("expr", [ "geneid" ]) ~to_:("genes", [ "geneid" ]);
      Schema.ric ~name:"hyb_sample" ~from_:("hyb", [ "sampleid" ]) ~to_:("samples", [ "sampleid" ]);
      Schema.ric ~name:"hyb_array" ~from_:("hyb", [ "arrayid" ]) ~to_:("arrays", [ "arrayid" ]);
      Schema.ric ~name:"hyb_proto" ~from_:("hyb", [ "protoname" ]) ~to_:("protocols", [ "protoname" ]);
      Schema.ric ~name:"probe_gene" ~from_:("probes", [ "geneid" ]) ~to_:("genes", [ "geneid" ]);
    ]

let threesdb2 = lazy (Reverse.recover threesdb2_schema)

let scenario () =
  let src_schema, src_strees = Lazy.force threesdb1 in
  let tgt_cm, tgt_strees = Lazy.force threesdb2 in
  let source = Discover.side ~schema:src_schema ~cm:threesdb1_cm src_strees in
  let target = Discover.side ~schema:threesdb2_schema ~cm:tgt_cm tgt_strees in
  let bench = Scenario.bench ~source:src_schema ~target:threesdb2_schema in
  let corr = Smg_cq.Mapping.corr_of_strings in
  let cases =
    [
      {
        Scenario.case_name = "expression-level";
        corrs =
          [
            corr "expression.level" "expr.lvl";
            corr "gene.symbol" "genes.sym";
          ];
        benchmark =
          [
            bench ~name:"expression-level"
              ~src:
                [
                  ("expression", [ ("gid", "g"); ("level", "v0") ]);
                  ("gene", [ ("gid", "g"); ("symbol", "v1") ]);
                ]
              ~tgt:
                [
                  ("expr", [ ("geneid", "g"); ("lvl", "v0") ]);
                  ("genes", [ ("geneid", "g"); ("sym", "v1") ]);
                ]
              ~covered:
                [ ("expression.level", "expr.lvl"); ("gene.symbol", "genes.sym") ]
              ~src_head:[ "v0"; "v1" ] ~tgt_head:[ "v0"; "v1" ] ();
          ];
      };
      {
        Scenario.case_name = "hybridization-array";
        corrs =
          [
            corr "hybridization.hdate" "hyb.hdate";
            corr "microarray.vendor" "arrays.maker";
          ];
        benchmark =
          [
            bench ~name:"hybridization-array"
              ~src:
                [
                  ("hybridization", [ ("maid", "a"); ("hdate", "v0") ]);
                  ("microarray", [ ("maid", "a"); ("vendor", "v1") ]);
                ]
              ~tgt:
                [
                  ("hyb", [ ("arrayid", "a"); ("hdate", "v0") ]);
                  ("arrays", [ ("arrayid", "a"); ("maker", "v1") ]);
                ]
              ~covered:
                [
                  ("hybridization.hdate", "hyb.hdate");
                  ("microarray.vendor", "arrays.maker");
                ]
              ~src_head:[ "v0"; "v1" ] ~tgt_head:[ "v0"; "v1" ] ();
          ];
      };
      {
        Scenario.case_name = "sample-tissue";
        corrs =
          [
            corr "sample.sid" "samples.sampleid";
            corr "tissue.tname" "tissues.tname";
          ];
        benchmark =
          [
            bench ~name:"sample-tissue"
              ~src:
                [
                  ("sample", [ ("sid", "v0"); ("takenFrom_tname", "t") ]);
                  ("tissue", [ ("tname", "t") ]);
                ]
              ~tgt:
                [
                  ("samples", [ ("sampleid", "v0"); ("tissue", "t") ]);
                  ("tissues", [ ("tname", "t") ]);
                ]
              ~covered:
                [
                  ("sample.sid", "samples.sampleid");
                  ("tissue.tname", "tissues.tname");
                ]
              ~src_head:[ "v0"; "t" ] ~tgt_head:[ "v0"; "t" ] ();
          ];
      };
    ]
  in
  let scen =
    {
      Scenario.scen_name = "3Sdb";
      source_label = "3Sdb1";
      target_label = "3Sdb2";
      source_cm_label = "3Sdb1 ER";
      target_cm_label = "3Sdb2 ER (rev.)";
      source;
      target;
      cases;
    }
  in
  Scenario.validate scen;
  scen
