(** University of Toronto domain (Table 1 rows UTCS/UTDB): a CS
    department database against a DB group database, with semantics
    expressed against richer ontologies. Exercises Example 1.3:
    disambiguating two otherwise indistinguishable functional
    relationships by their [partOf] semantic category. Two benchmark
    cases. *)

val scenario : unit -> Scenario.t
