module Schema = Smg_relational.Schema
module Cml = Smg_cm.Cml
module Atom = Smg_cq.Atom
module Query = Smg_cq.Query
module Mapping = Smg_cq.Mapping
module Discover = Smg_core.Discover

type case = {
  case_name : string;
  corrs : Mapping.corr list;
  benchmark : Mapping.t list;
}

type t = {
  scen_name : string;
  source_label : string;
  target_label : string;
  source_cm_label : string;
  target_cm_label : string;
  source : Discover.side;
  target : Discover.side;
  cases : case list;
}

let n_class_nodes (cm : Cml.t) =
  List.length cm.Cml.classes + List.length cm.Cml.reified

let table_atom schema table ~prefix bindings =
  let t = Schema.find_table_exn schema table in
  List.iter
    (fun (c, _) ->
      if not (Schema.has_column t c) then
        invalid_arg (Printf.sprintf "bench: %s has no column %s" table c))
    bindings;
  Atom.atom table
    (List.map
       (fun c ->
         match List.assoc_opt c bindings with
         | Some v -> Atom.Var v
         | None -> Atom.Var (Printf.sprintf "%s_%s" prefix c))
       (Schema.column_names t))

let bench ?(outer = false) ~name ~source ~target ~src ~tgt ~covered ~src_head
    ~tgt_head () =
  let atoms schema side_tag atoms_spec =
    List.mapi
      (fun i (table, bindings) ->
        table_atom schema table
          ~prefix:(Printf.sprintf "%s%d" side_tag i)
          bindings)
      atoms_spec
  in
  let src_atoms = atoms source "s" src in
  let tgt_atoms = atoms target "t" tgt in
  Mapping.make ~name ~outer
    ~src_query:
      (Query.make ~name:"src" ~head:(List.map Atom.v src_head) src_atoms)
    ~tgt_query:
      (Query.make ~name:"tgt" ~head:(List.map Atom.v tgt_head) tgt_atoms)
    ~covered:
      (List.map (fun (a, b) -> Mapping.corr_of_strings a b) covered)
    ()

let validate scen =
  let check_col (schema : Schema.t) (table, col) =
    match Schema.find_table schema table with
    | None ->
        invalid_arg
          (Printf.sprintf "scenario %s: unknown table %s" scen.scen_name table)
    | Some t ->
        if not (Schema.has_column t col) then
          invalid_arg
            (Printf.sprintf "scenario %s: %s has no column %s" scen.scen_name
               table col)
  in
  List.iter
    (fun case ->
      List.iter
        (fun (c : Mapping.corr) ->
          check_col scen.source.Discover.schema c.Mapping.c_src;
          check_col scen.target.Discover.schema c.Mapping.c_tgt)
        case.corrs;
      List.iter
        (fun (m : Mapping.t) ->
          (* covered correspondences of the benchmark must be among the
             case's correspondences *)
          List.iter
            (fun (c : Mapping.corr) ->
              if
                not
                  (List.exists
                     (fun c' -> Mapping.compare_corr c c' = 0)
                     case.corrs)
              then
                invalid_arg
                  (Printf.sprintf
                     "scenario %s, case %s: benchmark covers foreign correspondence"
                     scen.scen_name case.case_name))
            m.Mapping.covered;
          List.iter
            (fun (a : Atom.t) ->
              ignore (Schema.find_table_exn scen.source.Discover.schema a.Atom.pred))
            m.Mapping.src_query.Query.body;
          List.iter
            (fun (a : Atom.t) ->
              ignore (Schema.find_table_exn scen.target.Discover.schema a.Atom.pred))
            m.Mapping.tgt_query.Query.body)
        case.benchmark)
    scen.cases
