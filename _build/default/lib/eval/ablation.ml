module Discover = Smg_core.Discover
module Mapping = Smg_cq.Mapping

type variant = { v_name : string; v_options : Discover.options }

let base = Experiments.semantic_options

let variants =
  [
    { v_name = "full"; v_options = base };
    { v_name = "no-shapes"; v_options = { base with Discover.use_shapes = false } };
    {
      v_name = "no-partof";
      v_options = { base with Discover.use_partof = false; strict_partof = false };
    };
    {
      v_name = "no-preselection";
      v_options = { base with Discover.use_preselection = false };
    };
    { v_name = "no-lossy"; v_options = { base with Discover.allow_lossy = false } };
    {
      v_name = "no-partial";
      v_options = { base with Discover.include_partial = false };
    };
  ]

type row = { r_variant : string; r_precision : float; r_recall : float }

let run_variant scens (v : variant) =
  let per_domain =
    List.map
      (fun (scen : Scenario.t) ->
        let outcomes =
          List.map
            (fun (case : Scenario.case) ->
              let all =
                Discover.discover ~options:v.v_options
                  ~source:scen.Scenario.source ~target:scen.Scenario.target
                  ~corrs:case.Scenario.corrs ()
              in
              let generated =
                match all with
                | [] -> []
                | best :: _ ->
                    List.filter
                      (fun m ->
                        m.Mapping.score
                        <= best.Mapping.score +. Experiments.presentation_window)
                      all
              in
              let o =
                Measures.score
                  ~schemas:
                    ( scen.Scenario.source.Discover.schema,
                      scen.Scenario.target.Discover.schema )
                  ~generated ~benchmark:case.Scenario.benchmark ()
              in
              (o.Measures.precision, o.Measures.recall))
            scen.Scenario.cases
        in
        Measures.average outcomes)
      scens
  in
  let p, r = Measures.average per_domain in
  { r_variant = v.v_name; r_precision = p; r_recall = r }

let run scens = List.map (run_variant scens) variants

let pp ppf rows =
  Fmt.pf ppf "@[<v>Ablation (macro-averaged over all domains)@,%s@,"
    (String.make 46 '-');
  Fmt.pf ppf "%-18s %10s %10s@," "variant" "precision" "recall";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-18s %10.2f %10.2f@," r.r_variant r.r_precision r.r_recall)
    rows;
  Fmt.pf ppf "@]"

(* ---- diagnostic micro-scenarios ---------------------------------------- *)

module Cml = Smg_cm.Cml
module Cardinality = Smg_cm.Cardinality
module Design = Smg_er2rel.Design

let corr = Mapping.corr_of_strings

(* shapes: source offers a functional f and a many-many M between A and
   B at equal cost; the target relationship is many-one. *)
let micro_shapes () =
  let source_cm =
    Cml.make ~name:"ms-src"
      ~binaries:[ Cml.functional "f" ~src:"A" ~dst:"B" ]
      ~reified:
        [
          Cml.reified "m"
            [ ("ma", "A", Cardinality.many); ("mb", "B", Cardinality.many) ];
        ]
      [ Cml.cls ~id:[ "a" ] "A" [ "a" ]; Cml.cls ~id:[ "b" ] "B" [ "b" ] ]
  in
  let src_schema, src_strees =
    Design.design
      ~config:{ Design.default_config with merge_functional = false }
      source_cm
  in
  let target_cm =
    Cml.make ~name:"ms-tgt"
      ~reified:
        [
          Cml.reified "n"
            [
              ("na", "A2", Cardinality.at_most_one);
              ("nb", "B2", Cardinality.many);
            ];
        ]
      [ Cml.cls ~id:[ "a2" ] "A2" [ "a2" ]; Cml.cls ~id:[ "b2" ] "B2" [ "b2" ] ]
  in
  let tgt_schema, tgt_strees = Design.design target_cm in
  let bench = Scenario.bench ~source:src_schema ~target:tgt_schema in
  {
    Scenario.scen_name = "micro-shapes";
    source_label = "ms-src";
    target_label = "ms-tgt";
    source_cm_label = "ms-src";
    target_cm_label = "ms-tgt";
    source = Smg_core.Discover.side ~schema:src_schema ~cm:source_cm src_strees;
    target = Smg_core.Discover.side ~schema:tgt_schema ~cm:target_cm tgt_strees;
    cases =
      [
        {
          Scenario.case_name = "functional-wins";
          corrs = [ corr "a.a" "n.a2"; corr "b.b" "n.b2" ];
          benchmark =
            [
              bench ~name:"functional-wins"
                ~src:
                  [
                    ("a", [ ("a", "v0") ]);
                    ("f", [ ("a", "v0"); ("b", "v1") ]);
                    ("b", [ ("b", "v1") ]);
                  ]
                ~tgt:[ ("n", [ ("a2", "v0"); ("b2", "v1") ]) ]
                ~covered:[ ("a.a", "n.a2"); ("b.b", "n.b2") ]
                ~src_head:[ "v0"; "v1" ] ~tgt_head:[ "v0"; "v1" ] ();
            ];
        };
      ];
  }

(* preselection: a two-hop connection through the correspondence tables'
   own s-trees (c1: A→C, c2: C→B) ties against a one-hop shortcut d
   only because pre-selected edges are (nearly) free. *)
let micro_preselection () =
  let source_cm =
    Cml.make ~name:"mp-src"
      ~binaries:
        [
          Cml.functional "c1" ~src:"A" ~dst:"C";
          Cml.functional "c2" ~src:"C" ~dst:"B";
          Cml.functional "d" ~src:"A" ~dst:"B";
        ]
      [
        Cml.cls ~id:[ "a" ] "A" [ "a" ];
        Cml.cls ~id:[ "b" ] "B" [ "b" ];
        Cml.cls ~id:[ "c" ] "C" [ "c" ];
      ]
  in
  let src_schema, src_strees =
    Design.design
      ~config:{ Design.default_config with merge_functional = false }
      source_cm
  in
  let target_cm =
    Cml.make ~name:"mp-tgt"
      ~binaries:[ Cml.functional "r" ~src:"TA" ~dst:"TB" ]
      [ Cml.cls ~id:[ "ta" ] "TA" [ "ta" ]; Cml.cls ~id:[ "tb" ] "TB" [ "tb" ] ]
  in
  let tgt_schema, tgt_strees = Design.design target_cm in
  let bench = Scenario.bench ~source:src_schema ~target:tgt_schema in
  {
    Scenario.scen_name = "micro-preselection";
    source_label = "mp-src";
    target_label = "mp-tgt";
    source_cm_label = "mp-src";
    target_cm_label = "mp-tgt";
    source = Smg_core.Discover.side ~schema:src_schema ~cm:source_cm src_strees;
    target = Smg_core.Discover.side ~schema:tgt_schema ~cm:target_cm tgt_strees;
    cases =
      [
        {
          Scenario.case_name = "preselected-two-hop";
          corrs = [ corr "c1.a" "ta.ta"; corr "c2.b" "ta.r_tb" ];
          benchmark =
            [
              bench ~name:"preselected-two-hop"
                ~src:
                  [
                    ("c1", [ ("a", "v0"); ("c", "x") ]);
                    ("c2", [ ("c", "x"); ("b", "v1") ]);
                  ]
                ~tgt:[ ("ta", [ ("ta", "v0"); ("r_tb", "v1") ]) ]
                ~covered:[ ("c1.a", "ta.ta"); ("c2.b", "ta.r_tb") ]
                ~src_head:[ "v0"; "v1" ] ~tgt_head:[ "v0"; "v1" ] ();
            ];
        };
      ];
  }

(* lossy: three marked classes connected A —m(many-many, unreified)— B
   —f→ C; a ternary target. An unreified many-many edge has no anchor to
   root a functional tree at, and path search only handles pairs, so
   covering all three needs the Wald–Sorenson lossy fallback. *)
let micro_lossy () =
  let source_cm =
    Cml.make ~name:"ml-src"
      ~binaries:
        [
          Cml.functional "f" ~src:"B" ~dst:"C";
          Cml.many_many "m" ~src:"A" ~dst:"B";
        ]
      [
        Cml.cls ~id:[ "a" ] "A" [ "a" ];
        Cml.cls ~id:[ "b" ] "B" [ "b" ];
        Cml.cls ~id:[ "c" ] "C" [ "c" ];
      ]
  in
  let src_schema, src_strees = Design.design source_cm in
  let target_cm =
    Cml.make ~name:"ml-tgt"
      ~reified:
        [
          Cml.reified "t"
            [
              ("t_a", "A2", Cardinality.many);
              ("t_b", "B2", Cardinality.many);
              ("t_c", "C2", Cardinality.many);
            ];
        ]
      [
        Cml.cls ~id:[ "a2" ] "A2" [ "a2" ];
        Cml.cls ~id:[ "b2" ] "B2" [ "b2" ];
        Cml.cls ~id:[ "c2" ] "C2" [ "c2" ];
      ]
  in
  let tgt_schema, tgt_strees = Design.design target_cm in
  let bench = Scenario.bench ~source:src_schema ~target:tgt_schema in
  {
    Scenario.scen_name = "micro-lossy";
    source_label = "ml-src";
    target_label = "ml-tgt";
    source_cm_label = "ml-src";
    target_cm_label = "ml-tgt";
    source = Smg_core.Discover.side ~schema:src_schema ~cm:source_cm src_strees;
    target = Smg_core.Discover.side ~schema:tgt_schema ~cm:target_cm tgt_strees;
    cases =
      [
        {
          Scenario.case_name = "three-way-lossy";
          corrs =
            [ corr "a.a" "t.a2"; corr "m.b" "t.b2"; corr "c.c" "t.c2" ];
          benchmark =
            [
              bench ~name:"three-way-lossy"
                ~src:
                  [
                    ("a", [ ("a", "v0") ]);
                    ("m", [ ("a", "v0"); ("b", "v1") ]);
                    ("b", [ ("b", "v1"); ("f_c", "v2") ]);
                    ("c", [ ("c", "v2") ]);
                  ]
                ~tgt:[ ("t", [ ("a2", "v0"); ("b2", "v1"); ("c2", "v2") ]) ]
                ~covered:
                  [ ("a.a", "t.a2"); ("m.b", "t.b2"); ("c.c", "t.c2") ]
                ~src_head:[ "v0"; "v1"; "v2" ] ~tgt_head:[ "v0"; "v1"; "v2" ] ();
            ];
        };
      ];
  }

(* partial coverage: the source CM has no connection at all between A
   and B (disconnected components) while the target relates them; the
   expected output is the *split* — one mapping per correspondence. *)
let micro_partial () =
  let source_cm =
    Cml.make ~name:"mq-src"
      [ Cml.cls ~id:[ "a" ] "A" [ "a" ]; Cml.cls ~id:[ "b" ] "B" [ "b" ] ]
  in
  let src_schema, src_strees = Design.design source_cm in
  let target_cm =
    Cml.make ~name:"mq-tgt"
      ~reified:
        [
          Cml.reified "t"
            [ ("t_a", "A2", Cardinality.many); ("t_b", "B2", Cardinality.many) ];
        ]
      [ Cml.cls ~id:[ "a2" ] "A2" [ "a2" ]; Cml.cls ~id:[ "b2" ] "B2" [ "b2" ] ]
  in
  let tgt_schema, tgt_strees = Design.design target_cm in
  let bench = Scenario.bench ~source:src_schema ~target:tgt_schema in
  {
    Scenario.scen_name = "micro-partial";
    source_label = "mq-src";
    target_label = "mq-tgt";
    source_cm_label = "mq-src";
    target_cm_label = "mq-tgt";
    source = Smg_core.Discover.side ~schema:src_schema ~cm:source_cm src_strees;
    target = Smg_core.Discover.side ~schema:tgt_schema ~cm:target_cm tgt_strees;
    cases =
      [
        {
          Scenario.case_name = "split-coverage";
          corrs = [ corr "a.a" "t.a2"; corr "b.b" "t.b2" ];
          benchmark =
            [
              bench ~name:"split-a"
                ~src:[ ("a", [ ("a", "v0") ]) ]
                ~tgt:[ ("t", [ ("a2", "v0") ]) ]
                ~covered:[ ("a.a", "t.a2") ]
                ~src_head:[ "v0" ] ~tgt_head:[ "v0" ] ();
              bench ~name:"split-b"
                ~src:[ ("b", [ ("b", "v0") ]) ]
                ~tgt:[ ("t", [ ("b2", "v0") ]) ]
                ~covered:[ ("b.b", "t.b2") ]
                ~src_head:[ "v0" ] ~tgt_head:[ "v0" ] ();
            ];
        };
      ];
  }

let micro_scenarios () =
  let scens =
    [ micro_shapes (); micro_preselection (); micro_lossy (); micro_partial () ]
  in
  List.iter Scenario.validate scens;
  scens

let run_micro () = run (micro_scenarios ())
