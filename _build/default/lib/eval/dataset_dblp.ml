module Schema = Smg_relational.Schema
module Cml = Smg_cm.Cml
module Cardinality = Smg_cm.Cardinality
module Design = Smg_er2rel.Design
module Reverse = Smg_er2rel.Reverse
module Discover = Smg_core.Discover

(* ---- DBLP1: Bibliographic ontology, er2rel-designed ---- *)

let biblio_cm =
  Cml.make ~name:"Bibliographic"
    ~isas:
      [
        { Cml.sub = "Author"; super = "Person" };
        { Cml.sub = "Editor"; super = "Person" };
        { Cml.sub = "Article"; super = "Publication" };
        { Cml.sub = "InProceedings"; super = "Publication" };
        { Cml.sub = "Book"; super = "Publication" };
        { Cml.sub = "Chapter"; super = "Publication" };
        { Cml.sub = "TechReport"; super = "Publication" };
        { Cml.sub = "Thesis"; super = "Publication" };
        { Cml.sub = "University"; super = "Organization" };
        { Cml.sub = "Company"; super = "Organization" };
        { Cml.sub = "Translator"; super = "Person" };
      ]
    ~covers:[ ("Publication", [ "Article"; "InProceedings"; "Book"; "Chapter"; "TechReport"; "Thesis" ]) ]
    ~disjointness:[ [ "Article"; "InProceedings"; "Book" ] ]
    ~binaries:
      [
        Cml.functional "publishedIn" ~src:"Article" ~dst:"Journal";
        Cml.functional ~total:true "presentedAt" ~src:"InProceedings" ~dst:"Proceedings";
        Cml.functional ~total:true "procOf" ~src:"Proceedings" ~dst:"Conference";
        Cml.functional "publishedBy" ~src:"Book" ~dst:"Publisher";
        Cml.functional "inSeries" ~src:"Proceedings" ~dst:"Series";
        Cml.functional "affiliatedWith" ~src:"Person" ~dst:"Organization";
        Cml.functional ~kind:Cml.PartOf ~total:true "chapterOf" ~src:"Chapter" ~dst:"Book";
        Cml.functional "thesisAt" ~src:"Thesis" ~dst:"University";
      ]
    ~reified:
      [
        Cml.reified "authorOf"
          [
            ("author", "Author", Cardinality.many);
            ("work", "Publication", Cardinality.at_least_one);
          ];
        Cml.reified "editorOf"
          [
            ("editor", "Editor", Cardinality.many);
            ("volume", "Proceedings", Cardinality.many);
          ];
        Cml.reified "cites"
          [
            ("citing", "Publication", Cardinality.many);
            ("cited", "Publication", Cardinality.many);
          ];
      ]
    [
      Cml.cls ~id:[ "pid" ] "Person" [ "pid"; "name" ];
      Cml.cls "Author" [];
      Cml.cls "Editor" [];
      Cml.cls ~id:[ "pubid" ] "Publication" [ "pubid"; "title"; "year" ];
      Cml.cls "Article" [ "pages" ];
      Cml.cls "InProceedings" [];
      Cml.cls "Book" [ "isbn" ];
      Cml.cls "Chapter" [];
      Cml.cls "TechReport" [ "number" ];
      Cml.cls "Thesis" [];
      Cml.cls ~id:[ "jid" ] "Journal" [ "jid"; "jname" ];
      Cml.cls ~id:[ "procid" ] "Proceedings" [ "procid"; "ptitle" ];
      Cml.cls ~id:[ "confid" ] "Conference" [ "confid"; "cname" ];
      Cml.cls ~id:[ "pubname" ] "Publisher" [ "pubname" ];
      Cml.cls ~id:[ "sname" ] "Series" [ "sname" ];
      Cml.cls ~id:[ "oname" ] "Organization" [ "oname" ];
      Cml.cls "University" [];
      Cml.cls "Company" [];
      Cml.cls "Translator" [];
    ]

(* The Bibliographic ontology proper is much larger than the DBLP1
   schema (the paper reports 75 CM nodes for 22 tables): extend the
   design fragment with ontology concepts that have no tables. Each
   extra attaches to the core at a single point, so no new connections
   between core concepts arise. *)
let biblio_full =
  Cml.make ~name:"Bibliographic"
    ~isas:
      (biblio_cm.Cml.isas
      @ [
          { Cml.sub = "Magazine"; super = "Periodical" };
          { Cml.sub = "Newsletter"; super = "Periodical" };
          { Cml.sub = "Booklet"; super = "Misc" };
          { Cml.sub = "Manual"; super = "Misc" };
          { Cml.sub = "MastersThesis"; super = "Thesis" };
          { Cml.sub = "PhdThesis"; super = "Thesis" };
          { Cml.sub = "Lecture"; super = "Event" };
          { Cml.sub = "Tutorial"; super = "Event" };
          { Cml.sub = "Symposium"; super = "Event" };
        ])
    ~covers:biblio_cm.Cml.covers
    ~disjointness:biblio_cm.Cml.disjointness
    ~binaries:
      (biblio_cm.Cml.binaries
      @ [
          Cml.functional "aboutTopic" ~src:"Publication" ~dst:"Topic";
          Cml.functional "broaderTopic" ~src:"Topic" ~dst:"Topic";
          Cml.functional "wonBy" ~src:"Award" ~dst:"Person";
          Cml.functional "groupAt" ~src:"ResearchGroup" ~dst:"Organization";
          Cml.functional "heldWith" ~src:"Event" ~dst:"Conference";
          Cml.functional "keywordOf" ~src:"Keyword" ~dst:"Topic";
          Cml.functional "fundedBy" ~src:"Project" ~dst:"Organization";
          Cml.functional "periodicalBy" ~src:"Periodical" ~dst:"Publisher";
        ])
    ~reified:biblio_cm.Cml.reified
    (biblio_cm.Cml.classes
    @ [
        Cml.cls ~id:[ "tname" ] "Topic" [ "tname" ];
        Cml.cls ~id:[ "kw" ] "Keyword" [ "kw" ];
        Cml.cls ~id:[ "awname" ] "Award" [ "awname" ];
        Cml.cls ~id:[ "rgname" ] "ResearchGroup" [ "rgname" ];
        Cml.cls ~id:[ "projname" ] "Project" [ "projname" ];
        Cml.cls ~id:[ "evname" ] "Event" [ "evname" ];
        Cml.cls ~id:[ "pername" ] "Periodical" [ "pername" ];
        Cml.cls "Magazine" [];
        Cml.cls "Newsletter" [];
        Cml.cls ~id:[ "mname" ] "Misc" [ "mname" ];
        Cml.cls "Booklet" [];
        Cml.cls "Manual" [];
        Cml.cls "MastersThesis" [];
        Cml.cls "PhdThesis" [];
        Cml.cls "Lecture" [];
        Cml.cls "Tutorial" [];
        Cml.cls "Symposium" [];
      ])

let dblp1 = lazy (Design.design biblio_cm)

(* ---- DBLP2: coarse hand-written schema, reverse-engineered CM ---- *)

let dblp2_schema =
  Schema.make ~name:"dblp2"
    [
      Schema.table ~key:[ "pubid" ] "pubs"
        [
          ("pubid", Schema.TString);
          ("title", Schema.TString);
          ("year", Schema.TString);
          ("jid", Schema.TString);
        ];
      Schema.table ~key:[ "aid" ] "authors"
        [ ("aid", Schema.TString); ("name", Schema.TString) ];
      Schema.table ~key:[ "aid"; "pubid" ] "wrote"
        [ ("aid", Schema.TString); ("pubid", Schema.TString) ];
      Schema.table ~key:[ "citing"; "cited" ] "cite"
        [ ("citing", Schema.TString); ("cited", Schema.TString) ];
      Schema.table ~key:[ "jid" ] "journals"
        [ ("jid", Schema.TString); ("jname", Schema.TString) ];
      Schema.table ~key:[ "cid" ] "confs"
        [ ("cid", Schema.TString); ("cname", Schema.TString) ];
      Schema.table ~key:[ "pubid"; "cid" ] "inconf"
        [ ("pubid", Schema.TString); ("cid", Schema.TString) ];
      Schema.table ~key:[ "pname" ] "publishers" [ ("pname", Schema.TString) ];
      Schema.table ~key:[ "pubid"; "pname" ] "pubby"
        [ ("pubid", Schema.TString); ("pname", Schema.TString) ];
    ]
    [
      Schema.ric ~name:"pubs_jid" ~from_:("pubs", [ "jid" ]) ~to_:("journals", [ "jid" ]);
      Schema.ric ~name:"wrote_aid" ~from_:("wrote", [ "aid" ]) ~to_:("authors", [ "aid" ]);
      Schema.ric ~name:"wrote_pub" ~from_:("wrote", [ "pubid" ]) ~to_:("pubs", [ "pubid" ]);
      Schema.ric ~name:"cite_citing" ~from_:("cite", [ "citing" ]) ~to_:("pubs", [ "pubid" ]);
      Schema.ric ~name:"cite_cited" ~from_:("cite", [ "cited" ]) ~to_:("pubs", [ "pubid" ]);
      Schema.ric ~name:"inconf_pub" ~from_:("inconf", [ "pubid" ]) ~to_:("pubs", [ "pubid" ]);
      Schema.ric ~name:"inconf_cid" ~from_:("inconf", [ "cid" ]) ~to_:("confs", [ "cid" ]);
      Schema.ric ~name:"pubby_pub" ~from_:("pubby", [ "pubid" ]) ~to_:("pubs", [ "pubid" ]);
      Schema.ric ~name:"pubby_pname" ~from_:("pubby", [ "pname" ]) ~to_:("publishers", [ "pname" ]);
    ]

let dblp2 = lazy (Reverse.recover dblp2_schema)

(* ---- cases ---- *)

let scenario () =
  let src_schema, src_strees = Lazy.force dblp1 in
  let tgt_cm, tgt_strees = Lazy.force dblp2 in
  let source = Discover.side ~schema:src_schema ~cm:biblio_full src_strees in
  let target = Discover.side ~schema:dblp2_schema ~cm:tgt_cm tgt_strees in
  let bench = Scenario.bench ~source:src_schema ~target:dblp2_schema in
  let author_pub_src hv =
    [
      ("person", [ ("pid", "p"); ("name", "vn") ]);
      ("authorof", [ ("pid", "p"); ("pubid", "w") ]);
      ("publication", [ ("pubid", "w"); (hv, "vx") ]);
    ]
  in
  let author_pub_tgt hv =
    [
      ("authors", [ ("aid", "a"); ("name", "vn") ]);
      ("wrote", [ ("aid", "a"); ("pubid", "w") ]);
      ("pubs", [ ("pubid", "w"); (hv, "vx") ]);
    ]
  in
  let cases =
    [
      {
        Scenario.case_name = "author-of-title";
        corrs =
          [
            Smg_cq.Mapping.corr_of_strings "person.name" "authors.name";
            Smg_cq.Mapping.corr_of_strings "publication.title" "pubs.title";
          ];
        benchmark =
          [
            bench ~name:"author-of-title" ~src:(author_pub_src "title")
              ~tgt:(author_pub_tgt "title")
              ~covered:
                [
                  ("person.name", "authors.name");
                  ("publication.title", "pubs.title");
                ]
              ~src_head:[ "vn"; "vx" ] ~tgt_head:[ "vn"; "vx" ] ();
          ];
      };
      {
        Scenario.case_name = "author-of-year";
        corrs =
          [
            Smg_cq.Mapping.corr_of_strings "person.name" "authors.name";
            Smg_cq.Mapping.corr_of_strings "publication.year" "pubs.year";
          ];
        benchmark =
          [
            bench ~name:"author-of-year" ~src:(author_pub_src "year")
              ~tgt:(author_pub_tgt "year")
              ~covered:
                [
                  ("person.name", "authors.name");
                  ("publication.year", "pubs.year");
                ]
              ~src_head:[ "vn"; "vx" ] ~tgt_head:[ "vn"; "vx" ] ();
          ];
      };
      {
        Scenario.case_name = "article-journal";
        corrs =
          [
            Smg_cq.Mapping.corr_of_strings "publication.title" "pubs.title";
            Smg_cq.Mapping.corr_of_strings "journal.jname" "journals.jname";
          ];
        benchmark =
          [
            bench ~name:"article-journal"
              ~src:
                [
                  ("publication", [ ("pubid", "p"); ("title", "v0") ]);
                  ("article", [ ("pubid", "p"); ("publishedIn_jid", "j") ]);
                  ("journal", [ ("jid", "j"); ("jname", "v1") ]);
                ]
              ~tgt:
                [
                  ("pubs", [ ("title", "v0"); ("jid", "j") ]);
                  ("journals", [ ("jid", "j"); ("jname", "v1") ]);
                ]
              ~covered:
                [
                  ("publication.title", "pubs.title");
                  ("journal.jname", "journals.jname");
                ]
              ~src_head:[ "v0"; "v1" ] ~tgt_head:[ "v0"; "v1" ] ();
          ];
      };
      {
        Scenario.case_name = "inproceedings-conference";
        corrs =
          [
            Smg_cq.Mapping.corr_of_strings "publication.title" "pubs.title";
            Smg_cq.Mapping.corr_of_strings "conference.cname" "confs.cname";
          ];
        benchmark =
          [
            bench ~name:"inproceedings-conference"
              ~src:
                [
                  ("publication", [ ("pubid", "p"); ("title", "v0") ]);
                  ("inproceedings", [ ("pubid", "p"); ("presentedAt_procid", "pr") ]);
                  ("proceedings", [ ("procid", "pr"); ("procOf_confid", "c") ]);
                  ("conference", [ ("confid", "c"); ("cname", "v1") ]);
                ]
              ~tgt:
                [
                  ("pubs", [ ("pubid", "p"); ("title", "v0") ]);
                  ("inconf", [ ("pubid", "p"); ("cid", "c") ]);
                  ("confs", [ ("cid", "c"); ("cname", "v1") ]);
                ]
              ~covered:
                [
                  ("publication.title", "pubs.title");
                  ("conference.cname", "confs.cname");
                ]
              ~src_head:[ "v0"; "v1" ] ~tgt_head:[ "v0"; "v1" ] ();
          ];
      };
      {
        Scenario.case_name = "book-publisher";
        corrs =
          [
            Smg_cq.Mapping.corr_of_strings "publication.title" "pubs.title";
            Smg_cq.Mapping.corr_of_strings "publisher.pubname" "publishers.pname";
          ];
        benchmark =
          [
            bench ~name:"book-publisher"
              ~src:
                [
                  ("publication", [ ("pubid", "p"); ("title", "v0") ]);
                  ("book", [ ("pubid", "p"); ("publishedBy_pubname", "pb") ]);
                  ("publisher", [ ("pubname", "pb") ]);
                ]
              ~tgt:
                [
                  ("pubs", [ ("pubid", "p"); ("title", "v0") ]);
                  ("pubby", [ ("pubid", "p"); ("pname", "pb") ]);
                  ("publishers", [ ("pname", "pb") ]);
                ]
              ~covered:
                [
                  ("publication.title", "pubs.title");
                  ("publisher.pubname", "publishers.pname");
                ]
              ~src_head:[ "v0"; "pb" ] ~tgt_head:[ "v0"; "pb" ] ();
          ];
      };
      {
        Scenario.case_name = "author-journal";
        corrs =
          [
            Smg_cq.Mapping.corr_of_strings "person.name" "authors.name";
            Smg_cq.Mapping.corr_of_strings "journal.jname" "journals.jname";
          ];
        benchmark =
          [
            bench ~name:"author-journal"
              ~src:
                [
                  ("person", [ ("pid", "a"); ("name", "v0") ]);
                  ("authorof", [ ("pid", "a"); ("pubid", "p") ]);
                  ("article", [ ("pubid", "p"); ("publishedIn_jid", "j") ]);
                  ("journal", [ ("jid", "j"); ("jname", "v1") ]);
                ]
              ~tgt:
                [
                  ("authors", [ ("aid", "a"); ("name", "v0") ]);
                  ("wrote", [ ("aid", "a"); ("pubid", "p") ]);
                  ("pubs", [ ("pubid", "p"); ("jid", "j") ]);
                  ("journals", [ ("jid", "j"); ("jname", "v1") ]);
                ]
              ~covered:
                [
                  ("person.name", "authors.name");
                  ("journal.jname", "journals.jname");
                ]
              ~src_head:[ "v0"; "v1" ] ~tgt_head:[ "v0"; "v1" ] ();
          ];
      };
    ]
  in
  let scen =
    {
      Scenario.scen_name = "DBLP";
      source_label = "DBLP1";
      target_label = "DBLP2";
      source_cm_label = "Bibliographic";
      target_cm_label = "DBLP2 ER (rev.)";
      source;
      target;
      cases;
    }
  in
  Scenario.validate scen;
  scen
