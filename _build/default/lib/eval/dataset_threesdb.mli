(** 3Sdb biological-samples domain (Table 1 rows 3Sdb1/3Sdb2): two
    versions of a repository of data on biological samples used in gene
    expression analysis [Jiang et al. RE'06]. Exercises n-ary reified
    relationships (a ternary hybridization) and reified relationships
    with attributes. Three benchmark cases. *)

val scenario : unit -> Scenario.t
