module Mapping = Smg_cq.Mapping

type outcome = {
  n_generated : int;
  n_benchmark : int;
  n_hits : int;
  precision : float;
  recall : float;
}

let score ?schemas ~generated ~benchmark () =
  let equal p r =
    match schemas with
    | Some (source, target) -> Mapping.same_under ~source ~target p r
    | None -> Mapping.same p r
  in
  let hits =
    List.filter (fun r -> List.exists (fun p -> equal p r) generated) benchmark
  in
  let n_generated = List.length generated in
  let n_benchmark = List.length benchmark in
  let n_hits = List.length hits in
  {
    n_generated;
    n_benchmark;
    n_hits;
    precision =
      (if n_generated = 0 then 0.
       else float_of_int n_hits /. float_of_int n_generated);
    recall =
      (if n_benchmark = 0 then 1.
       else float_of_int n_hits /. float_of_int n_benchmark);
  }

let average outcomes =
  match outcomes with
  | [] -> (0., 0.)
  | _ ->
      let n = float_of_int (List.length outcomes) in
      let sp = List.fold_left (fun acc (p, _) -> acc +. p) 0. outcomes in
      let sr = List.fold_left (fun acc (_, r) -> acc +. r) 0. outcomes in
      (sp /. n, sr /. n)
