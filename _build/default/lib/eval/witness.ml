module Value = Smg_relational.Value
module Schema = Smg_relational.Schema
module Instance = Smg_relational.Instance
module Query = Smg_cq.Query
module Mapping = Smg_cq.Mapping
module Dependency = Smg_cq.Dependency
module Chase = Smg_cq.Chase
module Discover = Smg_core.Discover

(* Deterministic pseudo-random stream (no Random: reproducibility). *)
let mix seed i j = ((seed * 1103515245) + (i * 12345) + (j * 2654435761)) land 0x3FFFFFFF

let populate ?(rows_per_table = 4) ~seed schema =
  (* Pooled constants: the same small value domain is used for every
     column, so natural joins and RIC references frequently hit. *)
  let pool k = Value.VString (Printf.sprintf "c%d" (k mod 7)) in
  let base =
    List.fold_left
      (fun inst (t : Schema.table) ->
        let header = Schema.column_names t in
        let rec add inst i =
          if i >= rows_per_table then inst
          else begin
            let row =
              Array.of_list
                (List.mapi
                   (fun j c ->
                     (* key columns get row-unique values, others pooled *)
                     if List.mem c t.Schema.key then
                       Value.VString
                         (Printf.sprintf "k_%s_%d_%d" t.Schema.tbl_name i j)
                     else pool (mix seed i j))
                   header)
            in
            add (Instance.add_tuple inst t.Schema.tbl_name ~header row) (i + 1)
          end
        in
        add inst 0)
      Instance.empty schema.Schema.tables
  in
  (* Chase the RICs so every reference resolves (referenced rows are
     invented with labelled nulls where needed). *)
  match
    Chase.run ~max_rounds:10 ~schema ~tgds:(Dependency.ric_tgds schema)
      ~egds:[] base
  with
  | Chase.Saturated i | Chase.Bounded i -> i
  | Chase.Failed msg -> invalid_arg ("witness: chase failed: " ^ msg)

type verdict = {
  w_case : string;
  w_agree : bool;
  w_discovered : int;
  w_benchmark : int;
}

let answers schema inst (q : Query.t) =
  let rel = Query.eval schema inst q in
  List.map
    (fun tup -> List.map Value.to_string (Array.to_list tup))
    rel.Smg_relational.Instance.tuples
  |> List.sort compare

let check_case ?rows_per_table ?(seed = 42) (scen : Scenario.t)
    (case : Scenario.case) =
  let generated =
    Experiments.run_method Experiments.Semantic scen case
  in
  let schema = scen.Scenario.source.Discover.schema in
  let hit =
    List.find_opt
      (fun m ->
        List.exists
          (fun b ->
            Mapping.same_under ~source:schema
              ~target:scen.Scenario.target.Discover.schema m b)
          case.Scenario.benchmark)
      generated
  in
  match (hit, case.Scenario.benchmark) with
  | Some m, b :: _ ->
      let inst = populate ?rows_per_table ~seed schema in
      let got = answers schema inst m.Mapping.src_query in
      let expected = answers schema inst b.Mapping.src_query in
      Some
        {
          w_case = case.Scenario.case_name;
          w_agree = got = expected;
          w_discovered = List.length got;
          w_benchmark = List.length expected;
        }
  | _, _ -> None

let check_scenario ?seed scen =
  List.filter_map (fun case -> check_case ?seed scen case) scen.Scenario.cases

let pp_verdict ppf v =
  Fmt.pf ppf "%-28s %s (answers: discovered %d, benchmark %d)" v.w_case
    (if v.w_agree then "agree" else "DISAGREE")
    v.w_discovered v.w_benchmark
