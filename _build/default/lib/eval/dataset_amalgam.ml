module Schema = Smg_relational.Schema
module Cml = Smg_cm.Cml
module Cardinality = Smg_cm.Cardinality
module Stree = Smg_semantics.Stree
module Design = Smg_er2rel.Design
module Discover = Smg_core.Discover

let n = Stree.nref

(* ---- Amalgam1: contributor hierarchy split over tables, keyed by name *)

let amalgam1_cm =
  Cml.make ~name:"amalgam1"
    ~isas:
      [
        { Cml.sub = "Writer"; super = "Contributor" };
        { Cml.sub = "Reviewer"; super = "Contributor" };
        { Cml.sub = "Editor"; super = "Contributor" };
        { Cml.sub = "Article"; super = "Publication" };
        { Cml.sub = "Monograph"; super = "Publication" };
        { Cml.sub = "Thesis"; super = "Publication" };
        { Cml.sub = "Report"; super = "Publication" };
        { Cml.sub = "Misc"; super = "Publication" };
      ]
    ~covers:[ ("Contributor", [ "Writer"; "Reviewer" ]) ]
    ~binaries:
      [
        Cml.functional "appearedIn" ~src:"Publication" ~dst:"Journal";
        Cml.functional "presentedAt" ~src:"Publication" ~dst:"Conference";
        Cml.functional "printedBy" ~src:"Monograph" ~dst:"Publisher";
      ]
    ~reified:
      [
        Cml.reified "wrote"
          [
            ("wrote_by", "Writer", Cardinality.many);
            ("wrote_work", "Publication", Cardinality.at_least_one);
          ];
        Cml.reified ~attrs:[ "grade" ] "reviewed"
          [
            ("rev_by", "Reviewer", Cardinality.many);
            ("rev_work", "Publication", Cardinality.many);
          ];
      ]
    [
      Cml.cls ~id:[ "name" ] "Contributor" [ "name"; "email" ];
      Cml.cls "Writer" [ "royalties" ];
      Cml.cls "Reviewer" [ "expertise" ];
      Cml.cls ~id:[ "pubid" ] "Publication" [ "pubid"; "title"; "year" ];
      Cml.cls ~id:[ "jname" ] "Journal" [ "jname" ];
      Cml.cls "Editor" [];
      Cml.cls "Article" [ "pages" ];
      Cml.cls "Monograph" [ "isbn" ];
      Cml.cls "Thesis" [ "school" ];
      Cml.cls "Report" [ "instnum" ];
      Cml.cls "Misc" [ "note" ];
      Cml.cls ~id:[ "confname" ] "Conference" [ "confname" ];
      Cml.cls ~id:[ "pubhouse" ] "Publisher" [ "pubhouse" ];
    ]

let amalgam1 = lazy (Design.design amalgam1_cm)

(* ---- Amalgam2: one flat person table, keyed by an internal cid ---- *)

let amalgam2_cm =
  Cml.make ~name:"amalgam2"
    ~isas:
      [
        { Cml.sub = "Writer"; super = "Contributor" };
        { Cml.sub = "Reviewer"; super = "Contributor" };
        { Cml.sub = "Article"; super = "Publication" };
        { Cml.sub = "Monograph"; super = "Publication" };
        { Cml.sub = "Thesis"; super = "Publication" };
        { Cml.sub = "Report"; super = "Publication" };
      ]
    ~covers:[ ("Contributor", [ "Writer"; "Reviewer" ]) ]
    ~binaries:[ Cml.functional "appearedIn" ~src:"Publication" ~dst:"Journal" ]
    ~reified:
      [
        Cml.reified "wrote"
          [
            ("wrote_by", "Writer", Cardinality.many);
            ("wrote_work", "Publication", Cardinality.at_least_one);
          ];
        Cml.reified ~attrs:[ "grade" ] "reviewed"
          [
            ("rev_by", "Reviewer", Cardinality.many);
            ("rev_work", "Publication", Cardinality.many);
          ];
      ]
    [
      Cml.cls ~id:[ "cid" ] "Contributor" [ "cid"; "name"; "email" ];
      Cml.cls "Writer" [ "royalties" ];
      Cml.cls "Reviewer" [ "expertise" ];
      Cml.cls ~id:[ "recid" ] "Publication" [ "recid"; "title"; "year" ];
      Cml.cls ~id:[ "jname" ] "Journal" [ "jname" ];
      Cml.cls "Article" [ "pages" ];
      Cml.cls "Monograph" [ "isbn" ];
      Cml.cls "Thesis" [ "school" ];
      Cml.cls "Report" [ "instnum" ];
    ]

let amalgam2_schema =
  Schema.make ~name:"amalgam2"
    [
      Schema.table ~key:[ "cid" ] "person"
        [
          ("cid", Schema.TString);
          ("name", Schema.TString);
          ("email", Schema.TString);
          ("royalties", Schema.TString);
          ("expertise", Schema.TString);
        ];
      Schema.table ~key:[ "recid" ] "pubs"
        [
          ("recid", Schema.TString);
          ("title", Schema.TString);
          ("year", Schema.TString);
          ("jname", Schema.TString);
        ];
      Schema.table ~key:[ "cid"; "recid" ] "wrote2"
        [ ("cid", Schema.TString); ("recid", Schema.TString) ];
      Schema.table ~key:[ "cid"; "recid" ] "reviewed2"
        [
          ("cid", Schema.TString);
          ("recid", Schema.TString);
          ("grade", Schema.TString);
        ];
      Schema.table ~key:[ "recid" ] "article_details"
        [ ("recid", Schema.TString); ("pages", Schema.TString) ];
      Schema.table ~key:[ "recid" ] "book_details"
        [ ("recid", Schema.TString); ("isbn", Schema.TString) ];
      Schema.table ~key:[ "recid" ] "thesis_details"
        [ ("recid", Schema.TString); ("school", Schema.TString) ];
      Schema.table ~key:[ "recid" ] "report_details"
        [ ("recid", Schema.TString); ("instnum", Schema.TString) ];
    ]
    [
      Schema.ric ~name:"article_isa" ~from_:("article_details", [ "recid" ]) ~to_:("pubs", [ "recid" ]);
      Schema.ric ~name:"book_isa" ~from_:("book_details", [ "recid" ]) ~to_:("pubs", [ "recid" ]);
      Schema.ric ~name:"thesis_isa" ~from_:("thesis_details", [ "recid" ]) ~to_:("pubs", [ "recid" ]);
      Schema.ric ~name:"report_isa" ~from_:("report_details", [ "recid" ]) ~to_:("pubs", [ "recid" ]);
      Schema.ric ~name:"wrote2_cid" ~from_:("wrote2", [ "cid" ]) ~to_:("person", [ "cid" ]);
      Schema.ric ~name:"wrote2_recid" ~from_:("wrote2", [ "recid" ]) ~to_:("pubs", [ "recid" ]);
      Schema.ric ~name:"rev2_cid" ~from_:("reviewed2", [ "cid" ]) ~to_:("person", [ "cid" ]);
      Schema.ric ~name:"rev2_recid" ~from_:("reviewed2", [ "recid" ]) ~to_:("pubs", [ "recid" ]);
    ]

(* hand-authored s-trees: person merges the whole hierarchy (Example
   1.2's target side), the rest mirror the CM directly *)
let amalgam2_strees =
  [
    Stree.make ~table:"person" ~anchor:(n "Contributor")
      ~edges:
        [
          { Stree.se_src = n "Writer"; se_kind = Stree.SIsa; se_dst = n "Contributor" };
          { Stree.se_src = n "Reviewer"; se_kind = Stree.SIsa; se_dst = n "Contributor" };
        ]
      ~cols:
        [
          ("cid", n "Contributor", "cid");
          ("name", n "Contributor", "name");
          ("email", n "Contributor", "email");
          ("royalties", n "Writer", "royalties");
          ("expertise", n "Reviewer", "expertise");
        ]
      ~ids:[ (n "Contributor", [ "cid" ]) ]
      [ n "Contributor"; n "Writer"; n "Reviewer" ];
    Stree.make ~table:"pubs" ~anchor:(n "Publication")
      ~edges:
        [
          {
            Stree.se_src = n "Publication";
            se_kind = Stree.SRel "appearedIn";
            se_dst = n "Journal";
          };
        ]
      ~cols:
        [
          ("recid", n "Publication", "recid");
          ("title", n "Publication", "title");
          ("year", n "Publication", "year");
          ("jname", n "Journal", "jname");
        ]
      ~ids:[ (n "Publication", [ "recid" ]); (n "Journal", [ "jname" ]) ]
      [ n "Publication"; n "Journal" ];
    Stree.make ~table:"wrote2" ~anchor:(n "wrote")
      ~edges:
        [
          { Stree.se_src = n "wrote"; se_kind = Stree.SRole "wrote_by"; se_dst = n "Writer" };
          { Stree.se_src = n "wrote"; se_kind = Stree.SRole "wrote_work"; se_dst = n "Publication" };
        ]
      ~cols:
        [ ("cid", n "Writer", "cid"); ("recid", n "Publication", "recid") ]
      ~ids:
        [
          (n "Writer", [ "cid" ]);
          (n "Publication", [ "recid" ]);
          (n "wrote", [ "cid"; "recid" ]);
        ]
      [ n "wrote"; n "Writer"; n "Publication" ];
    Stree.make ~table:"reviewed2" ~anchor:(n "reviewed")
      ~edges:
        [
          { Stree.se_src = n "reviewed"; se_kind = Stree.SRole "rev_by"; se_dst = n "Reviewer" };
          { Stree.se_src = n "reviewed"; se_kind = Stree.SRole "rev_work"; se_dst = n "Publication" };
        ]
      ~cols:
        [
          ("cid", n "Reviewer", "cid");
          ("recid", n "Publication", "recid");
          ("grade", n "reviewed", "grade");
        ]
      ~ids:
        [
          (n "Reviewer", [ "cid" ]);
          (n "Publication", [ "recid" ]);
          (n "reviewed", [ "cid"; "recid" ]);
        ]
      [ n "reviewed"; n "Reviewer"; n "Publication" ];
    Stree.make ~table:"article_details" ~anchor:(n "Article")
      ~edges:[ { Stree.se_src = n "Article"; se_kind = Stree.SIsa; se_dst = n "Publication" } ]
      ~cols:[ ("recid", n "Article", "recid"); ("pages", n "Article", "pages") ]
      ~ids:[ (n "Article", [ "recid" ]) ]
      [ n "Article"; n "Publication" ];
    Stree.make ~table:"book_details" ~anchor:(n "Monograph")
      ~edges:[ { Stree.se_src = n "Monograph"; se_kind = Stree.SIsa; se_dst = n "Publication" } ]
      ~cols:[ ("recid", n "Monograph", "recid"); ("isbn", n "Monograph", "isbn") ]
      ~ids:[ (n "Monograph", [ "recid" ]) ]
      [ n "Monograph"; n "Publication" ];
    Stree.make ~table:"thesis_details" ~anchor:(n "Thesis")
      ~edges:[ { Stree.se_src = n "Thesis"; se_kind = Stree.SIsa; se_dst = n "Publication" } ]
      ~cols:[ ("recid", n "Thesis", "recid"); ("school", n "Thesis", "school") ]
      ~ids:[ (n "Thesis", [ "recid" ]) ]
      [ n "Thesis"; n "Publication" ];
    Stree.make ~table:"report_details" ~anchor:(n "Report")
      ~edges:[ { Stree.se_src = n "Report"; se_kind = Stree.SIsa; se_dst = n "Publication" } ]
      ~cols:[ ("recid", n "Report", "recid"); ("instnum", n "Report", "instnum") ]
      ~ids:[ (n "Report", [ "recid" ]) ]
      [ n "Report"; n "Publication" ];
  ]

let scenario () =
  let src_schema, src_strees = Lazy.force amalgam1 in
  let source = Discover.side ~schema:src_schema ~cm:amalgam1_cm src_strees in
  let target =
    Discover.side ~schema:amalgam2_schema ~cm:amalgam2_cm amalgam2_strees
  in
  let bench = Scenario.bench ~source:src_schema ~target:amalgam2_schema in
  let corr = Smg_cq.Mapping.corr_of_strings in
  let cases =
    [
      {
        Scenario.case_name = "hierarchy-merge";
        corrs =
          [
            corr "contributor.name" "person.name";
            corr "writer.royalties" "person.royalties";
            corr "reviewer.expertise" "person.expertise";
          ];
        benchmark =
          [
            bench ~name:"hierarchy-merge" ~outer:true
              ~src:
                [
                  ("contributor", [ ("name", "p"); ("email", "e") ]);
                  ("writer", [ ("name", "p"); ("royalties", "v1") ]);
                  ("reviewer", [ ("name", "p"); ("expertise", "v2") ]);
                ]
              ~tgt:
                [
                  ( "person",
                    [ ("name", "p"); ("royalties", "v1"); ("expertise", "v2") ]
                  );
                ]
              ~covered:
                [
                  ("contributor.name", "person.name");
                  ("writer.royalties", "person.royalties");
                  ("reviewer.expertise", "person.expertise");
                ]
              ~src_head:[ "p"; "v1"; "v2" ] ~tgt_head:[ "p"; "v1"; "v2" ] ();
          ];
      };
      {
        Scenario.case_name = "writer-royalties";
        corrs =
          [
            corr "contributor.name" "person.name";
            corr "writer.royalties" "person.royalties";
          ];
        benchmark =
          [
            bench ~name:"writer-royalties"
              ~src:
                [
                  ("contributor", [ ("name", "p") ]);
                  ("writer", [ ("name", "p"); ("royalties", "v1") ]);
                ]
              ~tgt:[ ("person", [ ("name", "p"); ("royalties", "v1") ]) ]
              ~covered:
                [
                  ("contributor.name", "person.name");
                  ("writer.royalties", "person.royalties");
                ]
              ~src_head:[ "p"; "v1" ] ~tgt_head:[ "p"; "v1" ] ();
          ];
      };
      {
        Scenario.case_name = "wrote-title";
        corrs =
          [
            corr "contributor.name" "person.name";
            corr "publication.title" "pubs.title";
          ];
        benchmark =
          [
            bench ~name:"wrote-title"
              ~src:
                [
                  ("contributor", [ ("name", "v0") ]);
                  ("wrote", [ ("name", "v0"); ("pubid", "w") ]);
                  ("publication", [ ("pubid", "w"); ("title", "v1") ]);
                ]
              ~tgt:
                [
                  ("person", [ ("cid", "c"); ("name", "v0") ]);
                  ("wrote2", [ ("cid", "c"); ("recid", "w") ]);
                  ("pubs", [ ("recid", "w"); ("title", "v1") ]);
                ]
              ~covered:
                [
                  ("contributor.name", "person.name");
                  ("publication.title", "pubs.title");
                ]
              ~src_head:[ "v0"; "v1" ] ~tgt_head:[ "v0"; "v1" ] ();
          ];
      };
      {
        Scenario.case_name = "review-grade";
        corrs =
          [
            corr "contributor.name" "person.name";
            corr "reviewed.grade" "reviewed2.grade";
          ];
        benchmark =
          [
            bench ~name:"review-grade"
              ~src:
                [
                  ("contributor", [ ("name", "v0") ]);
                  ("reviewed", [ ("name", "v0"); ("grade", "v1") ]);
                ]
              ~tgt:
                [
                  ("person", [ ("cid", "c"); ("name", "v0") ]);
                  ("reviewed2", [ ("cid", "c"); ("grade", "v1") ]);
                ]
              ~covered:
                [
                  ("contributor.name", "person.name");
                  ("reviewed.grade", "reviewed2.grade");
                ]
              ~src_head:[ "v0"; "v1" ] ~tgt_head:[ "v0"; "v1" ] ();
          ];
      };
      {
        Scenario.case_name = "journal-of-publication";
        corrs =
          [
            corr "publication.title" "pubs.title";
            corr "journal.jname" "pubs.jname";
          ];
        benchmark =
          [
            bench ~name:"journal-of-publication"
              ~src:
                [
                  ( "publication",
                    [ ("title", "v0"); ("appearedIn_jname", "v1") ] );
                  ("journal", [ ("jname", "v1") ]);
                ]
              ~tgt:[ ("pubs", [ ("title", "v0"); ("jname", "v1") ]) ]
              ~covered:
                [
                  ("publication.title", "pubs.title");
                  ("journal.jname", "pubs.jname");
                ]
              ~src_head:[ "v0"; "v1" ] ~tgt_head:[ "v0"; "v1" ] ();
          ];
      };
      {
        Scenario.case_name = "rootless-merge";
        corrs =
          [
            corr "writer.royalties" "person.royalties";
            corr "reviewer.expertise" "person.expertise";
          ];
        benchmark =
          [
            bench ~name:"rootless-merge" ~outer:true
              ~src:
                [
                  ("writer", [ ("name", "p"); ("royalties", "v1") ]);
                  ("reviewer", [ ("name", "p"); ("expertise", "v2") ]);
                ]
              ~tgt:
                [ ("person", [ ("royalties", "v1"); ("expertise", "v2") ]) ]
              ~covered:
                [
                  ("writer.royalties", "person.royalties");
                  ("reviewer.expertise", "person.expertise");
                ]
              ~src_head:[ "v1"; "v2" ] ~tgt_head:[ "v1"; "v2" ] ();
          ];
      };
      {
        Scenario.case_name = "email-and-year";
        corrs =
          [
            corr "contributor.email" "person.email";
            corr "publication.year" "pubs.year";
          ];
        benchmark =
          [
            bench ~name:"email-and-year"
              ~src:
                [
                  ("contributor", [ ("name", "p"); ("email", "v0") ]);
                  ("wrote", [ ("name", "p"); ("pubid", "w") ]);
                  ("publication", [ ("pubid", "w"); ("year", "v1") ]);
                ]
              ~tgt:
                [
                  ("person", [ ("cid", "c"); ("email", "v0") ]);
                  ("wrote2", [ ("cid", "c"); ("recid", "w") ]);
                  ("pubs", [ ("recid", "w"); ("year", "v1") ]);
                ]
              ~covered:
                [
                  ("contributor.email", "person.email");
                  ("publication.year", "pubs.year");
                ]
              ~src_head:[ "v0"; "v1" ] ~tgt_head:[ "v0"; "v1" ] ();
          ];
      };
    ]
  in
  let scen =
    {
      Scenario.scen_name = "Amalgam";
      source_label = "Amalgam1";
      target_label = "Amalgam2";
      source_cm_label = "amalgam1 ER";
      target_cm_label = "amalgam2 ER";
      source;
      target;
      cases;
    }
  in
  Scenario.validate scen;
  scen
