(** DBLP bibliography domain (Table 1 rows DBLP1/DBLP2).

    DBLP1 is a fine-grained schema forward-engineered (er2rel) from a
    Bibliographic-style ontology with publication-type ISA hierarchies
    and reified authorship/citation; DBLP2 is a coarse hand-written
    9-table schema whose CM is *reverse engineered* from its
    constraints, exactly as in the paper. Six benchmark mapping cases. *)

val scenario : unit -> Scenario.t
