(** Network domain (Table 1 rows NetworkA/NetworkB): two network
    management ontologies forward-engineered into schemas with
    different ISA encodings — side A one table per class, side B one
    table per *concrete* class, so side B's hierarchy is invisible as
    RICs (superclasses have no tables to reference). Six benchmark
    cases; several are unreachable for the RIC-based baseline. *)

val scenario : unit -> Scenario.t
