module Schema = Smg_relational.Schema
module Cml = Smg_cm.Cml
module Cardinality = Smg_cm.Cardinality
module Design = Smg_er2rel.Design
module Discover = Smg_core.Discover

(* ---- UTCS: KA-ontology-style CM ---- *)

let utcs_cm =
  Cml.make ~name:"ka_onto"
    ~isas:
      [
        { Cml.sub = "Professor"; super = "Person" };
        { Cml.sub = "Student"; super = "Person" };
        { Cml.sub = "GradStudent"; super = "Student" };
      ]
    ~binaries:
      [
        (* Example 1.3: chairOf is a part-whole association, deanOf is
           an ordinary one — both functional Department → Faculty. *)
        Cml.functional ~kind:Cml.PartOf "chairOf" ~src:"Department" ~dst:"Faculty";
        Cml.functional "deanOf" ~src:"Department" ~dst:"Faculty";
        Cml.functional "memberOf" ~src:"Professor" ~dst:"Department";
        Cml.functional "advisedBy" ~src:"GradStudent" ~dst:"Professor";
        Cml.functional ~kind:Cml.PartOf "offeredBy" ~src:"Course" ~dst:"Department";
      ]
    ~reified:
      [
        Cml.reified "teaches"
          [
            ("instructor", "Professor", Cardinality.many);
            ("taught", "Course", Cardinality.at_least_one);
          ];
        Cml.reified ~attrs:[ "term" ] "enrolled"
          [
            ("enrollee", "Student", Cardinality.many);
            ("course", "Course", Cardinality.many);
          ];
      ]
    [
      Cml.cls ~id:[ "pname" ] "Person" [ "pname" ];
      Cml.cls "Professor" [ "rank" ];
      Cml.cls "Student" [];
      Cml.cls "GradStudent" [ "program" ];
      Cml.cls ~id:[ "dname" ] "Department" [ "dname" ];
      Cml.cls ~id:[ "fname" ] "Faculty" [ "fname" ];
      Cml.cls ~id:[ "cno" ] "Course" [ "cno"; "ctitle" ];
    ]

(* The KA ontology is far larger than the UTCS schema (the paper
   reports 105 nodes for 8 tables); extend the design fragment with
   concepts that have no tables, each attached to the core at one
   point. *)
let ka_full =
  Cml.make ~name:"ka_onto"
    ~isas:
      (utcs_cm.Cml.isas
      @ [
          { Cml.sub = "Lecturer"; super = "Person" };
          { Cml.sub = "TechnicalStaff"; super = "Person" };
          { Cml.sub = "Undergraduate"; super = "Student" };
          { Cml.sub = "PhDStudent"; super = "GradStudent" };
          { Cml.sub = "MScStudent"; super = "GradStudent" };
          { Cml.sub = "JournalPaper"; super = "KAPublication" };
          { Cml.sub = "ConfPaper"; super = "KAPublication" };
          { Cml.sub = "BookChapter"; super = "KAPublication" };
          { Cml.sub = "Workshop"; super = "KAEvent" };
          { Cml.sub = "Meeting"; super = "KAEvent" };
          { Cml.sub = "Institute"; super = "KAOrganization" };
          { Cml.sub = "UniversityOrg"; super = "KAOrganization" };
        ])
    ~covers:utcs_cm.Cml.covers
    ~disjointness:utcs_cm.Cml.disjointness
    ~binaries:
      (utcs_cm.Cml.binaries
      @ [
          Cml.functional "worksOn" ~src:"Professor" ~dst:"Project";
          Cml.functional "headOf" ~src:"ResearchGroup" ~dst:"Department";
          Cml.functional "aboutArea" ~src:"Project" ~dst:"ResearchArea";
          Cml.functional "subArea" ~src:"ResearchArea" ~dst:"ResearchArea";
          Cml.functional "eventAbout" ~src:"KAEvent" ~dst:"ResearchArea";
          Cml.functional "publishedAt" ~src:"KAPublication" ~dst:"KAEvent";
          Cml.functional "orgOf" ~src:"KAOrganization" ~dst:"ResearchArea";
          Cml.functional "developedIn" ~src:"Product" ~dst:"Project";
        ])
    ~reified:utcs_cm.Cml.reified
    (utcs_cm.Cml.classes
    @ [
        Cml.cls "Lecturer" [];
        Cml.cls "TechnicalStaff" [];
        Cml.cls "Undergraduate" [];
        Cml.cls "PhDStudent" [];
        Cml.cls "MScStudent" [];
        Cml.cls ~id:[ "projid" ] "Project" [ "projid" ];
        Cml.cls ~id:[ "areaname" ] "ResearchArea" [ "areaname" ];
        Cml.cls ~id:[ "groupname" ] "ResearchGroup" [ "groupname" ];
        Cml.cls ~id:[ "kapubid" ] "KAPublication" [ "kapubid" ];
        Cml.cls "JournalPaper" [];
        Cml.cls "ConfPaper" [];
        Cml.cls "BookChapter" [];
        Cml.cls ~id:[ "kaevid" ] "KAEvent" [ "kaevid" ];
        Cml.cls "Workshop" [];
        Cml.cls "Meeting" [];
        Cml.cls ~id:[ "kaorgid" ] "KAOrganization" [ "kaorgid" ];
        Cml.cls "Institute" [];
        Cml.cls "UniversityOrg" [];
        Cml.cls ~id:[ "prodname" ] "Product" [ "prodname" ];
      ])

let utcs = lazy (Design.design utcs_cm)

(* ---- UTDB: the DB group database, hand-written, own small ontology ---- *)

let utdb_cm =
  Cml.make ~name:"csdept_onto"
    ~binaries:
      [
        (* only one functional relationship between Dept and Fac — which
           of chairOf/deanOf does it correspond to? Its partOf category
           says: chairOf. *)
        Cml.functional ~kind:Cml.PartOf "foo" ~src:"Dept" ~dst:"Fac";
        Cml.functional "worksIn" ~src:"Prof" ~dst:"Dept";
        Cml.functional "runBy" ~src:"Seminar" ~dst:"Prof";
        Cml.functional ~kind:Cml.PartOf "labOf" ~src:"Lab" ~dst:"Dept";
      ]
    ~reified:
      [
        Cml.reified "collaborates"
          [
            ("colla", "Prof", Cardinality.many);
            ("collb", "Grp", Cardinality.many);
          ];
      ]
    [
      Cml.cls ~id:[ "did" ] "Dept" [ "did"; "deptname" ];
      Cml.cls ~id:[ "fid" ] "Fac" [ "fid"; "facname" ];
      Cml.cls ~id:[ "pid" ] "Prof" [ "pid"; "profname" ];
      Cml.cls ~id:[ "semid" ] "Seminar" [ "semid"; "semtitle" ];
      Cml.cls ~id:[ "labid" ] "Lab" [ "labid"; "labname" ];
      Cml.cls ~id:[ "gid" ] "Grp" [ "gid"; "grpname" ];
    ]

let utdb_schema =
  Schema.make ~name:"utdb"
    [
      Schema.table ~key:[ "did" ] "dept"
        [
          ("did", Schema.TString);
          ("deptname", Schema.TString);
          ("head", Schema.TString);
        ];
      Schema.table ~key:[ "fid" ] "fac"
        [ ("fid", Schema.TString); ("facname", Schema.TString) ];
      Schema.table ~key:[ "pid" ] "prof"
        [
          ("pid", Schema.TString);
          ("profname", Schema.TString);
          ("dept", Schema.TString);
        ];
      Schema.table ~key:[ "semid" ] "seminar"
        [
          ("semid", Schema.TString);
          ("semtitle", Schema.TString);
          ("organizer", Schema.TString);
        ];
      Schema.table ~key:[ "labid" ] "lab"
        [
          ("labid", Schema.TString);
          ("labname", Schema.TString);
          ("labdept", Schema.TString);
        ];
      Schema.table ~key:[ "gid" ] "grp"
        [ ("gid", Schema.TString); ("grpname", Schema.TString) ];
      Schema.table ~key:[ "pid"; "gid" ] "collab"
        [ ("pid", Schema.TString); ("gid", Schema.TString) ];
    ]
    [
      Schema.ric ~name:"dept_head" ~from_:("dept", [ "head" ]) ~to_:("fac", [ "fid" ]);
      Schema.ric ~name:"prof_dept" ~from_:("prof", [ "dept" ]) ~to_:("dept", [ "did" ]);
      Schema.ric ~name:"sem_org" ~from_:("seminar", [ "organizer" ]) ~to_:("prof", [ "pid" ]);
      Schema.ric ~name:"lab_dept" ~from_:("lab", [ "labdept" ]) ~to_:("dept", [ "did" ]);
      Schema.ric ~name:"collab_pid" ~from_:("collab", [ "pid" ]) ~to_:("prof", [ "pid" ]);
      Schema.ric ~name:"collab_gid" ~from_:("collab", [ "gid" ]) ~to_:("grp", [ "gid" ]);
    ]

let utdb_strees =
  let n = Smg_semantics.Stree.nref in
  [
    Smg_semantics.Stree.make ~table:"dept" ~anchor:(n "Dept")
      ~edges:
        [
          { Smg_semantics.Stree.se_src = n "Dept"; se_kind = Smg_semantics.Stree.SRel "foo"; se_dst = n "Fac" };
        ]
      ~cols:
        [
          ("did", n "Dept", "did");
          ("deptname", n "Dept", "deptname");
          ("head", n "Fac", "fid");
        ]
      ~ids:[ (n "Dept", [ "did" ]); (n "Fac", [ "head" ]) ]
      [ n "Dept"; n "Fac" ];
    Smg_semantics.Stree.make ~table:"fac" ~anchor:(n "Fac")
      ~cols:[ ("fid", n "Fac", "fid"); ("facname", n "Fac", "facname") ]
      ~ids:[ (n "Fac", [ "fid" ]) ]
      [ n "Fac" ];
    Smg_semantics.Stree.make ~table:"prof" ~anchor:(n "Prof")
      ~edges:
        [
          { Smg_semantics.Stree.se_src = n "Prof"; se_kind = Smg_semantics.Stree.SRel "worksIn"; se_dst = n "Dept" };
        ]
      ~cols:
        [
          ("pid", n "Prof", "pid");
          ("profname", n "Prof", "profname");
          ("dept", n "Dept", "did");
        ]
      ~ids:[ (n "Prof", [ "pid" ]); (n "Dept", [ "dept" ]) ]
      [ n "Prof"; n "Dept" ];
    Smg_semantics.Stree.make ~table:"seminar" ~anchor:(n "Seminar")
      ~edges:
        [
          { Smg_semantics.Stree.se_src = n "Seminar"; se_kind = Smg_semantics.Stree.SRel "runBy"; se_dst = n "Prof" };
        ]
      ~cols:
        [
          ("semid", n "Seminar", "semid");
          ("semtitle", n "Seminar", "semtitle");
          ("organizer", n "Prof", "pid");
        ]
      ~ids:[ (n "Seminar", [ "semid" ]); (n "Prof", [ "organizer" ]) ]
      [ n "Seminar"; n "Prof" ];
    Smg_semantics.Stree.make ~table:"lab" ~anchor:(n "Lab")
      ~edges:
        [
          { Smg_semantics.Stree.se_src = n "Lab"; se_kind = Smg_semantics.Stree.SRel "labOf"; se_dst = n "Dept" };
        ]
      ~cols:
        [
          ("labid", n "Lab", "labid");
          ("labname", n "Lab", "labname");
          ("labdept", n "Dept", "did");
        ]
      ~ids:[ (n "Lab", [ "labid" ]); (n "Dept", [ "labdept" ]) ]
      [ n "Lab"; n "Dept" ];
    Smg_semantics.Stree.make ~table:"grp" ~anchor:(n "Grp")
      ~cols:[ ("gid", n "Grp", "gid"); ("grpname", n "Grp", "grpname") ]
      ~ids:[ (n "Grp", [ "gid" ]) ]
      [ n "Grp" ];
    Smg_semantics.Stree.make ~table:"collab" ~anchor:(n "collaborates")
      ~edges:
        [
          { Smg_semantics.Stree.se_src = n "collaborates"; se_kind = Smg_semantics.Stree.SRole "colla"; se_dst = n "Prof" };
          { Smg_semantics.Stree.se_src = n "collaborates"; se_kind = Smg_semantics.Stree.SRole "collb"; se_dst = n "Grp" };
        ]
      ~cols:[ ("pid", n "Prof", "pid"); ("gid", n "Grp", "gid") ]
      ~ids:
        [
          (n "Prof", [ "pid" ]);
          (n "Grp", [ "gid" ]);
          (n "collaborates", [ "pid"; "gid" ]);
        ]
      [ n "collaborates"; n "Prof"; n "Grp" ];
  ]

let scenario () =
  let src_schema, src_strees = Lazy.force utcs in
  let source = Discover.side ~schema:src_schema ~cm:ka_full src_strees in
  let target = Discover.side ~schema:utdb_schema ~cm:utdb_cm utdb_strees in
  let bench = Scenario.bench ~source:src_schema ~target:utdb_schema in
  let corr = Smg_cq.Mapping.corr_of_strings in
  let cases =
    [
      {
        (* Example 1.3: ⟨chairOf, foo⟩ is right, ⟨deanOf, foo⟩ wrong *)
        Scenario.case_name = "partof-disambiguation";
        corrs =
          [
            corr "department.dname" "dept.deptname";
            corr "faculty.fname" "fac.facname";
          ];
        benchmark =
          [
            bench ~name:"partof-disambiguation"
              ~src:
                [
                  ("department", [ ("dname", "v0"); ("chairOf_fname", "f") ]);
                  ("faculty", [ ("fname", "f") ]);
                ]
              ~tgt:
                [
                  ("dept", [ ("deptname", "v0"); ("head", "f") ]);
                  ("fac", [ ("fid", "f"); ("facname", "v1") ]);
                ]
              ~covered:
                [
                  ("department.dname", "dept.deptname");
                  ("faculty.fname", "fac.facname");
                ]
              ~src_head:[ "v0"; "f" ] ~tgt_head:[ "v0"; "v1" ] ();
          ];
      };
      {
        Scenario.case_name = "professor-department";
        corrs =
          [
            corr "person.pname" "prof.profname";
            corr "department.dname" "dept.deptname";
          ];
        benchmark =
          [
            bench ~name:"professor-department"
              ~src:
                [
                  ("person", [ ("pname", "v0") ]);
                  ("professor", [ ("pname", "v0"); ("memberOf_dname", "d") ]);
                  ("department", [ ("dname", "d") ]);
                ]
              ~tgt:
                [
                  ("prof", [ ("profname", "v0"); ("dept", "d") ]);
                  ("dept", [ ("did", "d"); ("deptname", "v1") ]);
                ]
              ~covered:
                [
                  ("person.pname", "prof.profname");
                  ("department.dname", "dept.deptname");
                ]
              ~src_head:[ "v0"; "d" ] ~tgt_head:[ "v0"; "v1" ] ();
          ];
      };
    ]
  in
  let scen =
    {
      Scenario.scen_name = "UT";
      source_label = "UTCS";
      target_label = "UTDB";
      source_cm_label = "KA onto.";
      target_cm_label = "CS dept. onto.";
      source;
      target;
      cases;
    }
  in
  Scenario.validate scen;
  scen
