(** Mondial geography domain (Table 1 rows Mondial1/Mondial2).

    Mondial1 is forward-engineered from a CIA-factbook-style ontology
    (countries, cities, provinces, organizations, languages, religions,
    geographic features, with reified memberships); Mondial2 is a
    coarser hand-written schema with a reverse-engineered CM. Five
    benchmark cases, including a cardinality-disambiguation case
    (capital vs city-in-country). *)

val scenario : unit -> Scenario.t
