module Cml = Smg_cm.Cml
module Cardinality = Smg_cm.Cardinality
module Design = Smg_er2rel.Design
module Discover = Smg_core.Discover

(* ---- NetworkA ontology: device hierarchy, table per class ---- *)

let networka_cm =
  Cml.make ~name:"networkA"
    ~isas:
      [
        { Cml.sub = "Router"; super = "Device" };
        { Cml.sub = "Switch"; super = "Device" };
        { Cml.sub = "Host"; super = "Device" };
        { Cml.sub = "Firewall"; super = "Device" };
        { Cml.sub = "LoadBalancer"; super = "Device" };
        { Cml.sub = "AccessPoint"; super = "Device" };
      ]
    ~disjointness:[ [ "Host"; "Router" ] ]
    ~binaries:
      [
        Cml.rel ~kind:Cml.PartOf "ifOn" ~src:"Interface" ~dst:"Device"
          ~card:(Cardinality.exactly_one, Cardinality.at_least_one);
        Cml.functional "inNetwork" ~src:"Device" ~dst:"Network";
        Cml.rel ~kind:Cml.PartOf "rackIn" ~src:"Device" ~dst:"Rack"
          ~card:(Cardinality.at_most_one, Cardinality.many);
        Cml.functional "siteOf" ~src:"Rack" ~dst:"Site";
        Cml.functional "subnetOf" ~src:"Interface" ~dst:"Subnet";
        Cml.functional "zoneOf" ~src:"Subnet" ~dst:"Zone";
      ]
    ~reified:
      [
        Cml.reified "memberVlan"
          [
            ("mv_iface", "Interface", Cardinality.many);
            ("mv_vlan", "Vlan", Cardinality.many);
          ];
        Cml.reified "connected"
          [
            ("conn_a", "Interface", Cardinality.many);
            ("conn_b", "Interface", Cardinality.many);
          ];
        Cml.reified ~attrs:[ "since" ] "manages"
          [
            ("operator", "Admin", Cardinality.many);
            ("managed", "Device", Cardinality.many);
          ];
      ]
    [
      Cml.cls ~id:[ "devid" ] "Device" [ "devid"; "devname" ];
      Cml.cls "Router" [ "model" ];
      Cml.cls "Switch" [ "nports" ];
      Cml.cls "Host" [ "os" ];
      Cml.cls "Firewall" [ "ruleset" ];
      Cml.cls "LoadBalancer" [ "algo" ];
      Cml.cls "AccessPoint" [ "ssid" ];
      Cml.cls ~id:[ "mac" ] "Interface" [ "mac"; "speed" ];
      Cml.cls ~id:[ "netid" ] "Network" [ "netid"; "netname" ];
      Cml.cls ~id:[ "vname" ] "Vlan" [ "vname" ];
      Cml.cls ~id:[ "rackid" ] "Rack" [ "rackid" ];
      Cml.cls ~id:[ "sitename" ] "Site" [ "sitename" ];
      Cml.cls ~id:[ "cidr" ] "Subnet" [ "cidr" ];
      Cml.cls ~id:[ "adminname" ] "Admin" [ "adminname" ];
      Cml.cls ~id:[ "zonename" ] "Zone" [ "zonename" ];
    ]

let networka = lazy (Design.design networka_cm)

(* ---- NetworkB ontology: node hierarchy, table per concrete class ---- *)

let networkb_cm =
  Cml.make ~name:"networkB"
    ~isas:
      [
        { Cml.sub = "Gateway"; super = "Node" };
        { Cml.sub = "Bridge"; super = "Node" };
        { Cml.sub = "Endpoint"; super = "Node" };
        { Cml.sub = "Proxy"; super = "Node" };
        { Cml.sub = "Repeater"; super = "Node" };
      ]
    ~binaries:
      [
        Cml.rel ~kind:Cml.PartOf "portOf" ~src:"Port" ~dst:"Node"
          ~card:(Cardinality.exactly_one, Cardinality.at_least_one);
        Cml.functional "belongsTo" ~src:"Node" ~dst:"Net";
        Cml.functional "cabinetOf" ~src:"Node" ~dst:"Cabinet";
        Cml.functional "campusOf" ~src:"Cabinet" ~dst:"Campus";
        Cml.functional "segmentOf" ~src:"Port" ~dst:"Segment";
      ]
    ~reified:
      [
        Cml.reified "attached"
          [
            ("att_port", "Port", Cardinality.many);
            ("att_lan", "Lan", Cardinality.many);
          ];
      ]
    [
      Cml.cls ~id:[ "nodeid" ] "Node" [ "nodeid"; "label" ];
      Cml.cls "Gateway" [ "model" ];
      Cml.cls "Bridge" [ "nports" ];
      Cml.cls "Endpoint" [ "os" ];
      Cml.cls "Proxy" [ "cachesize" ];
      Cml.cls "Repeater" [ "gain" ];
      Cml.cls ~id:[ "pmac" ] "Port" [ "pmac"; "rate" ];
      Cml.cls ~id:[ "nid" ] "Net" [ "nid"; "nname" ];
      Cml.cls ~id:[ "lname" ] "Lan" [ "lname" ];
      Cml.cls ~id:[ "cabid" ] "Cabinet" [ "cabid" ];
      Cml.cls ~id:[ "campusname" ] "Campus" [ "campusname" ];
      Cml.cls ~id:[ "segid" ] "Segment" [ "segid" ];
    ]

let networkb =
  lazy
    (Design.design
       ~config:{ Design.default_config with isa = Design.Table_per_concrete }
       networkb_cm)

let scenario () =
  let src_schema, src_strees = Lazy.force networka in
  let tgt_schema, tgt_strees = Lazy.force networkb in
  let source = Discover.side ~schema:src_schema ~cm:networka_cm src_strees in
  let target = Discover.side ~schema:tgt_schema ~cm:networkb_cm tgt_strees in
  let bench = Scenario.bench ~source:src_schema ~target:tgt_schema in
  let corr = Smg_cq.Mapping.corr_of_strings in
  let cases =
    [
      {
        (* ports of gateways: the target ISA is invisible as a RIC *)
        Scenario.case_name = "interface-on-router";
        corrs =
          [
            corr "interface.mac" "port.pmac";
            corr "router.model" "gateway.model";
          ];
        benchmark =
          [
            bench ~name:"interface-on-router"
              ~src:
                [
                  ("interface", [ ("mac", "v0"); ("ifOn_devid", "d") ]);
                  ("router", [ ("devid", "d"); ("model", "v1") ]);
                ]
              ~tgt:
                [
                  ("port", [ ("pmac", "v0"); ("portOf_nodeid", "d") ]);
                  ("gateway", [ ("nodeid", "d"); ("model", "v1") ]);
                ]
              ~covered:
                [
                  ("interface.mac", "port.pmac");
                  ("router.model", "gateway.model");
                ]
              ~src_head:[ "v0"; "v1" ] ~tgt_head:[ "v0"; "v1" ] ();
          ];
      };
      {
        Scenario.case_name = "host-endpoint";
        corrs =
          [
            corr "host.os" "endpoint.os";
            corr "device.devname" "endpoint.label";
          ];
        benchmark =
          [
            bench ~name:"host-endpoint"
              ~src:
                [
                  ("device", [ ("devid", "d"); ("devname", "v0") ]);
                  ("host", [ ("devid", "d"); ("os", "v1") ]);
                ]
              ~tgt:[ ("endpoint", [ ("label", "v0"); ("os", "v1") ]) ]
              ~covered:
                [
                  ("host.os", "endpoint.os");
                  ("device.devname", "endpoint.label");
                ]
              ~src_head:[ "v1"; "v0" ] ~tgt_head:[ "v1"; "v0" ] ();
          ];
      };
      {
        Scenario.case_name = "device-network";
        corrs =
          [
            corr "device.devname" "gateway.label";
            corr "network.netname" "net.nname";
          ];
        benchmark =
          [
            bench ~name:"device-network"
              ~src:
                [
                  ("device", [ ("devname", "v0"); ("inNetwork_netid", "n") ]);
                  ("network", [ ("netid", "n"); ("netname", "v1") ]);
                ]
              ~tgt:
                [
                  ("gateway", [ ("label", "v0"); ("belongsTo_nid", "n") ]);
                  ("net", [ ("nid", "n"); ("nname", "v1") ]);
                ]
              ~covered:
                [
                  ("device.devname", "gateway.label");
                  ("network.netname", "net.nname");
                ]
              ~src_head:[ "v0"; "v1" ] ~tgt_head:[ "v0"; "v1" ] ();
          ];
      };
      {
        Scenario.case_name = "vlan-membership";
        corrs =
          [
            corr "interface.mac" "port.pmac";
            corr "vlan.vname" "lan.lname";
          ];
        benchmark =
          [
            bench ~name:"vlan-membership"
              ~src:
                [
                  ("interface", [ ("mac", "v0") ]);
                  ("membervlan", [ ("mac", "v0"); ("vname", "l") ]);
                  ("vlan", [ ("vname", "l") ]);
                ]
              ~tgt:
                [
                  ("port", [ ("pmac", "v0") ]);
                  ("attached", [ ("pmac", "v0"); ("lname", "l") ]);
                  ("lan", [ ("lname", "l") ]);
                ]
              ~covered:
                [ ("interface.mac", "port.pmac"); ("vlan.vname", "lan.lname") ]
              ~src_head:[ "v0"; "l" ] ~tgt_head:[ "v0"; "l" ] ();
          ];
      };
      {
        Scenario.case_name = "port-speed";
        corrs =
          [
            corr "interface.speed" "port.rate";
            corr "interface.mac" "port.pmac";
          ];
        benchmark =
          [
            bench ~name:"port-speed"
              ~src:[ ("interface", [ ("mac", "v0"); ("speed", "v1") ]) ]
              ~tgt:[ ("port", [ ("pmac", "v0"); ("rate", "v1") ]) ]
              ~covered:
                [
                  ("interface.speed", "port.rate");
                  ("interface.mac", "port.pmac");
                ]
              ~src_head:[ "v1"; "v0" ] ~tgt_head:[ "v1"; "v0" ] ();
          ];
      };
      {
        (* three hops: lan of a gateway's port *)
        Scenario.case_name = "router-vlan";
        corrs =
          [
            corr "router.model" "gateway.model";
            corr "vlan.vname" "lan.lname";
          ];
        benchmark =
          [
            bench ~name:"router-vlan"
              ~src:
                [
                  ("router", [ ("devid", "d"); ("model", "v0") ]);
                  ("interface", [ ("mac", "m"); ("ifOn_devid", "d") ]);
                  ("membervlan", [ ("mac", "m"); ("vname", "l") ]);
                  ("vlan", [ ("vname", "l") ]);
                ]
              ~tgt:
                [
                  ("gateway", [ ("nodeid", "d"); ("model", "v0") ]);
                  ("port", [ ("pmac", "m"); ("portOf_nodeid", "d") ]);
                  ("attached", [ ("pmac", "m"); ("lname", "l") ]);
                  ("lan", [ ("lname", "l") ]);
                ]
              ~covered:
                [
                  ("router.model", "gateway.model");
                  ("vlan.vname", "lan.lname");
                ]
              ~src_head:[ "v0"; "l" ] ~tgt_head:[ "v0"; "l" ] ();
          ];
      };
    ]
  in
  let scen =
    {
      Scenario.scen_name = "Network";
      source_label = "NetworkA";
      target_label = "NetworkB";
      source_cm_label = "networkA onto.";
      target_cm_label = "networkB onto.";
      source;
      target;
      cases;
    }
  in
  Scenario.validate scen;
  scen
