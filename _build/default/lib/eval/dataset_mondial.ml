module Schema = Smg_relational.Schema
module Cml = Smg_cm.Cml
module Cardinality = Smg_cm.Cardinality
module Design = Smg_er2rel.Design
module Reverse = Smg_er2rel.Reverse
module Discover = Smg_core.Discover

(* ---- Mondial1: factbook-style ontology, er2rel-designed ---- *)

let factbook_cm =
  Cml.make ~name:"factbook"
    ~binaries:
      [
        (* every city lies in exactly one country; a country has many *)
        Cml.rel "cityIn" ~src:"City" ~dst:"Country"
          ~card:(Cardinality.exactly_one, Cardinality.many);
        (* the capital: at most one per country, a city is capital of at
           most one country *)
        Cml.rel "capital" ~src:"Country" ~dst:"City"
          ~card:(Cardinality.at_most_one, Cardinality.at_most_one);
        Cml.rel "provinceOf" ~src:"Province" ~dst:"Country"
          ~card:(Cardinality.exactly_one, Cardinality.many);
        Cml.functional "inContinent" ~src:"Country" ~dst:"Continent";
        Cml.functional "riverIn" ~src:"River" ~dst:"Country";
        Cml.functional "mountainIn" ~src:"Mountain" ~dst:"Country";
        Cml.functional "desertIn" ~src:"Desert" ~dst:"Country";
        Cml.functional "lakeIn" ~src:"Lake" ~dst:"Country";
        Cml.functional "islandIn" ~src:"Island" ~dst:"Sea";
        Cml.functional "glacierIn" ~src:"Glacier" ~dst:"Country";
        Cml.functional "volcanoIn" ~src:"Volcano" ~dst:"Country";
        Cml.functional "airportIn" ~src:"Airport" ~dst:"City";
        Cml.functional "currencyOf" ~src:"Currency" ~dst:"Country";
        Cml.functional "portIn" ~src:"Port" ~dst:"City";
        Cml.functional "damIn" ~src:"Dam" ~dst:"Country";
        Cml.functional "canalIn" ~src:"Canal" ~dst:"Country";
        Cml.functional "rangeIn" ~src:"Mountainrange" ~dst:"Country";
        Cml.functional "tzOf" ~src:"Timezone" ~dst:"Country";
      ]
    ~reified:
      [
        Cml.reified "memberOf"
          [
            ("member", "Country", Cardinality.many);
            ("org", "Organization", Cardinality.many);
          ];
        Cml.reified ~attrs:[ "percent" ] "speaks"
          [
            ("speaker", "Country", Cardinality.many);
            ("tongue", "Language", Cardinality.many);
          ];
        Cml.reified ~attrs:[ "percent" ] "believes"
          [
            ("believer", "Country", Cardinality.many);
            ("faith", "Religion", Cardinality.many);
          ];
        Cml.reified ~attrs:[ "percent" ] "inhabits"
          [
            ("homeland", "Country", Cardinality.many);
            ("people", "Ethnicgroup", Cardinality.many);
          ];
      ]
    [
      Cml.cls ~id:[ "code" ] "Country" [ "code"; "cname"; "population"; "area" ];
      Cml.cls ~id:[ "cityid" ] "City" [ "cityid"; "cityname"; "citypop" ];
      Cml.cls ~id:[ "pid" ] "Province" [ "pid"; "pname" ];
      Cml.cls ~id:[ "abbrev" ] "Organization" [ "abbrev"; "orgname" ];
      Cml.cls ~id:[ "contname" ] "Continent" [ "contname" ];
      Cml.cls ~id:[ "lang" ] "Language" [ "lang" ];
      Cml.cls ~id:[ "relname" ] "Religion" [ "relname" ];
      Cml.cls ~id:[ "rname" ] "River" [ "rname"; "length" ];
      Cml.cls ~id:[ "mname" ] "Mountain" [ "mname"; "height" ];
      Cml.cls ~id:[ "dname" ] "Desert" [ "dname" ];
      Cml.cls ~id:[ "lname" ] "Lake" [ "lname"; "depth" ];
      Cml.cls ~id:[ "iname" ] "Island" [ "iname" ];
      Cml.cls ~id:[ "sname" ] "Sea" [ "sname" ];
      Cml.cls ~id:[ "gname" ] "Glacier" [ "gname" ];
      Cml.cls ~id:[ "vname" ] "Volcano" [ "vname"; "elevation" ];
      Cml.cls ~id:[ "apcode" ] "Airport" [ "apcode" ];
      Cml.cls ~id:[ "ename" ] "Ethnicgroup" [ "ename" ];
      Cml.cls ~id:[ "curcode" ] "Currency" [ "curcode" ];
      Cml.cls ~id:[ "portname" ] "Port" [ "portname" ];
      Cml.cls ~id:[ "damname" ] "Dam" [ "damname" ];
      Cml.cls ~id:[ "canalname" ] "Canal" [ "canalname" ];
      Cml.cls ~id:[ "rangename" ] "Mountainrange" [ "rangename" ];
      Cml.cls ~id:[ "tzname" ] "Timezone" [ "tzname" ];
    ]

let mondial1 = lazy (Design.design factbook_cm)

(* ---- Mondial2: coarse hand-written schema, reverse-engineered CM ---- *)

let mondial2_schema =
  Schema.make ~name:"mondial2"
    [
      Schema.table ~key:[ "code" ] "country"
        [
          ("code", Schema.TString);
          ("name", Schema.TString);
          ("pop", Schema.TString);
          ("capital", Schema.TString);
        ];
      Schema.table ~key:[ "cid" ] "city"
        [ ("cid", Schema.TString); ("name", Schema.TString); ("country", Schema.TString) ];
      Schema.table ~key:[ "pid" ] "province"
        [ ("pid", Schema.TString); ("name", Schema.TString); ("country", Schema.TString) ];
      Schema.table ~key:[ "abbr" ] "org"
        [ ("abbr", Schema.TString); ("name", Schema.TString) ];
      Schema.table ~key:[ "country"; "abbr" ] "ismember"
        [ ("country", Schema.TString); ("abbr", Schema.TString) ];
      Schema.table ~key:[ "lname" ] "languages" [ ("lname", Schema.TString) ];
      Schema.table ~key:[ "country"; "lname" ] "spoken"
        [ ("country", Schema.TString); ("lname", Schema.TString); ("pct", Schema.TString) ];
      Schema.table ~key:[ "rname" ] "religions" [ ("rname", Schema.TString) ];
      Schema.table ~key:[ "country"; "rname" ] "practiced"
        [ ("country", Schema.TString); ("rname", Schema.TString); ("pct", Schema.TString) ];
    ]
    [
      Schema.ric ~name:"country_capital" ~from_:("country", [ "capital" ]) ~to_:("city", [ "cid" ]);
      Schema.ric ~name:"city_country" ~from_:("city", [ "country" ]) ~to_:("country", [ "code" ]);
      Schema.ric ~name:"province_country" ~from_:("province", [ "country" ]) ~to_:("country", [ "code" ]);
      Schema.ric ~name:"ismember_country" ~from_:("ismember", [ "country" ]) ~to_:("country", [ "code" ]);
      Schema.ric ~name:"ismember_org" ~from_:("ismember", [ "abbr" ]) ~to_:("org", [ "abbr" ]);
      Schema.ric ~name:"spoken_country" ~from_:("spoken", [ "country" ]) ~to_:("country", [ "code" ]);
      Schema.ric ~name:"spoken_lang" ~from_:("spoken", [ "lname" ]) ~to_:("languages", [ "lname" ]);
      Schema.ric ~name:"practiced_country" ~from_:("practiced", [ "country" ]) ~to_:("country", [ "code" ]);
      Schema.ric ~name:"practiced_rel" ~from_:("practiced", [ "rname" ]) ~to_:("religions", [ "rname" ]);
    ]

let mondial2 = lazy (Reverse.recover mondial2_schema)

let scenario () =
  let src_schema, src_strees = Lazy.force mondial1 in
  let tgt_cm, tgt_strees = Lazy.force mondial2 in
  let source = Discover.side ~schema:src_schema ~cm:factbook_cm src_strees in
  let target = Discover.side ~schema:mondial2_schema ~cm:tgt_cm tgt_strees in
  let bench = Scenario.bench ~source:src_schema ~target:mondial2_schema in
  let corr = Smg_cq.Mapping.corr_of_strings in
  let cases =
    [
      {
        Scenario.case_name = "city-in-country";
        corrs =
          [
            corr "city.cityname" "city.name";
            corr "country.cname" "country.name";
          ];
        benchmark =
          [
            bench ~name:"city-in-country"
              ~src:
                [
                  ("city", [ ("cityname", "v0"); ("cityIn_code", "c") ]);
                  ("country", [ ("code", "c"); ("cname", "v1") ]);
                ]
              ~tgt:
                [
                  ("city", [ ("name", "v0"); ("country", "c") ]);
                  ("country", [ ("code", "c"); ("name", "v1") ]);
                ]
              ~covered:
                [ ("city.cityname", "city.name"); ("country.cname", "country.name") ]
              ~src_head:[ "v0"; "v1" ] ~tgt_head:[ "v0"; "v1" ] ();
          ];
      };
      {
        Scenario.case_name = "capital";
        corrs =
          [
            corr "city.cityid" "country.capital";
            corr "country.cname" "country.name";
          ];
        benchmark =
          [
            bench ~name:"capital"
              ~src:
                [
                  ("country", [ ("cname", "v1"); ("capital_cityid", "v0") ]);
                  ("city", [ ("cityid", "v0") ]);
                ]
              ~tgt:[ ("country", [ ("name", "v1"); ("capital", "v0") ]) ]
              ~covered:
                [
                  ("city.cityid", "country.capital");
                  ("country.cname", "country.name");
                ]
              ~src_head:[ "v0"; "v1" ] ~tgt_head:[ "v0"; "v1" ] ();
          ];
      };
      {
        Scenario.case_name = "membership";
        corrs =
          [
            corr "country.cname" "country.name";
            corr "organization.orgname" "org.name";
          ];
        benchmark =
          [
            bench ~name:"membership"
              ~src:
                [
                  ("country", [ ("code", "c"); ("cname", "v0") ]);
                  ("memberof", [ ("code", "c"); ("abbrev", "o") ]);
                  ("organization", [ ("abbrev", "o"); ("orgname", "v1") ]);
                ]
              ~tgt:
                [
                  ("country", [ ("code", "c"); ("name", "v0") ]);
                  ("ismember", [ ("country", "c"); ("abbr", "o") ]);
                  ("org", [ ("abbr", "o"); ("name", "v1") ]);
                ]
              ~covered:
                [
                  ("country.cname", "country.name");
                  ("organization.orgname", "org.name");
                ]
              ~src_head:[ "v0"; "v1" ] ~tgt_head:[ "v0"; "v1" ] ();
          ];
      };
      {
        Scenario.case_name = "spoken-language";
        corrs =
          [
            corr "country.cname" "country.name";
            corr "language.lang" "languages.lname";
          ];
        benchmark =
          [
            bench ~name:"spoken-language"
              ~src:
                [
                  ("country", [ ("code", "c"); ("cname", "v0") ]);
                  ("speaks", [ ("code", "c"); ("lang", "l") ]);
                  ("language", [ ("lang", "l") ]);
                ]
              ~tgt:
                [
                  ("country", [ ("code", "c"); ("name", "v0") ]);
                  ("spoken", [ ("country", "c"); ("lname", "l") ]);
                  ("languages", [ ("lname", "l") ]);
                ]
              ~covered:
                [
                  ("country.cname", "country.name");
                  ("language.lang", "languages.lname");
                ]
              ~src_head:[ "v0"; "l" ] ~tgt_head:[ "v0"; "l" ] ();
          ];
      };
      {
        Scenario.case_name = "province-of";
        corrs =
          [
            corr "province.pname" "province.name";
            corr "country.cname" "country.name";
          ];
        benchmark =
          [
            bench ~name:"province-of"
              ~src:
                [
                  ("province", [ ("pname", "v0"); ("provinceOf_code", "c") ]);
                  ("country", [ ("code", "c"); ("cname", "v1") ]);
                ]
              ~tgt:
                [
                  ("province", [ ("name", "v0"); ("country", "c") ]);
                  ("country", [ ("code", "c"); ("name", "v1") ]);
                ]
              ~covered:
                [
                  ("province.pname", "province.name");
                  ("country.cname", "country.name");
                ]
              ~src_head:[ "v0"; "v1" ] ~tgt_head:[ "v0"; "v1" ] ();
          ];
      };
    ]
  in
  let scen =
    {
      Scenario.scen_name = "Mondial";
      source_label = "Mondial1";
      target_label = "Mondial2";
      source_cm_label = "factbook";
      target_cm_label = "mondial2 ER (rev.)";
      source;
      target;
      cases;
    }
  in
  Scenario.validate scen;
  scen
