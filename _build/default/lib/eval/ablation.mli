(** Ablation study over the semantic method's design choices: rerun the
    full benchmark with individual ingredients of §3 disabled and report
    how precision/recall move. The ingredients are exactly the ones
    DESIGN.md calls out:

    - [no-shapes]: drop the cardinality-compatibility filter (§3.2 (i))
    - [no-partof]: ignore the partOf semantic category (Example 1.3)
    - [no-preselection]: pre-selected s-tree edges cost like any other
      edge (§3.2 (ii), Case A.1's "do not contribute to the cost")
    - [no-lossy]: never traverse non-functional edges in tree search
      (disables the Wald–Sorenson fallback *and* keeps path search)
    - [no-partial]: no correspondence splitting on partial coverage *)

type variant = {
  v_name : string;
  v_options : Smg_core.Discover.options;
}

val variants : variant list
(** The full configuration first, then one variant per disabled
    ingredient. *)

type row = {
  r_variant : string;
  r_precision : float;  (** macro-average over domains *)
  r_recall : float;
}

val run : Scenario.t list -> row list

val micro_scenarios : unit -> Scenario.t list
(** Diagnostic micro-benchmarks that isolate single ingredients (the
    main datasets resolve most ambiguity through Case A.1 anchoring):

    - [micro-shapes]: a functional and a many-many connection tie in
      cost; only the cardinality filter rejects pairing the many-many
      one with a many-one target.
    - [micro-preselection]: a two-hop connection through pre-selected
      s-tree edges vs a one-hop shortcut outside them; preference for
      pre-selected edges picks the former.
    - [micro-lossy]: three marked nodes connected only through an
      unreified non-functional edge; covering all three needs the
      Wald–Sorenson lossy fallback.
    - [micro-partial]: the source CM does not connect the marked nodes
      at all; correspondence splitting must emit one mapping per
      component. *)

val run_micro : unit -> row list
(** The ablation variants over {!micro_scenarios}. *)

val pp : Format.formatter -> row list -> unit
