(** Precision and recall of generated mapping sets against manually
    created benchmarks, following §4 "Measures": for a case with
    benchmark set [R] and generated set [P],
    [precision = |P ∩ R| / |P|] and [recall = |P ∩ R| / |R|], where
    membership uses {!Smg_cq.Mapping.same} ("the same pair of
    connections"). *)

type outcome = {
  n_generated : int;
  n_benchmark : int;
  n_hits : int;
  precision : float;  (** 0 when nothing was generated *)
  recall : float;
}

val score :
  ?schemas:Smg_relational.Schema.t * Smg_relational.Schema.t ->
  generated:Smg_cq.Mapping.t list ->
  benchmark:Smg_cq.Mapping.t list ->
  unit ->
  outcome
(** With [schemas] (source, target), membership uses
    {!Smg_cq.Mapping.same_under} (equivalence modulo chase-implied
    atoms); otherwise plain {!Smg_cq.Mapping.same}. *)

val average : (float * float) list -> float * float
(** Average (precision, recall) pairs; [ (0., 0.) ] on empty input. *)
