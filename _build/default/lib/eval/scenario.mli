(** Evaluation scenarios: a schema pair with CMs and semantics, plus
    manually-created benchmark mapping cases (§4 "Methodology").

    Each case is one experiment: a set of correspondences together with
    the benchmark set [R] of expected non-trivial mappings. *)

type case = {
  case_name : string;
  corrs : Smg_cq.Mapping.corr list;
  benchmark : Smg_cq.Mapping.t list;
}

type t = {
  scen_name : string;  (** domain label, e.g. "DBLP" *)
  source_label : string;  (** e.g. "DBLP1" *)
  target_label : string;
  source_cm_label : string;  (** Table 1 "associated CM" column *)
  target_cm_label : string;
  source : Smg_core.Discover.side;
  target : Smg_core.Discover.side;
  cases : case list;
}

val n_class_nodes : Smg_cm.Cml.t -> int
(** Class-like nodes (classes + reified relationships) of a CM — the
    Table 1 "#nodes in CM" statistic. *)

val table_atom :
  Smg_relational.Schema.t ->
  string ->
  prefix:string ->
  (string * string) list ->
  Smg_cq.Atom.t
(** [table_atom schema t ~prefix bindings] builds an atom over table
    [t] whose bound columns carry the given variable names and whose
    remaining columns get fresh [prefix]-qualified variables — the
    compact way benchmark mappings are written. *)

val bench :
  ?outer:bool ->
  name:string ->
  source:Smg_relational.Schema.t ->
  target:Smg_relational.Schema.t ->
  src:(string * (string * string) list) list ->
  tgt:(string * (string * string) list) list ->
  covered:(string * string) list ->
  src_head:string list ->
  tgt_head:string list ->
  unit ->
  Smg_cq.Mapping.t
(** Build a benchmark mapping. [src]/[tgt] list the body atoms as
    [(table, bindings)] pairs; [covered] pairs ["t.c"] strings;
    [src_head]/[tgt_head] name the variables carrying each covered
    correspondence, in [covered] order. *)

val validate : t -> unit
(** Sanity-check a scenario: every correspondence references existing
    columns; every benchmark mapping's tables exist and its covered set
    equals the case's correspondences restricted to it.
    @raise Invalid_argument otherwise. *)
