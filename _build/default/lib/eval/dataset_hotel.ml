module Cml = Smg_cm.Cml
module Cardinality = Smg_cm.Cardinality
module Design = Smg_er2rel.Design
module Discover = Smg_core.Discover

(* ---- HotelA ontology ---- *)

let hotela_cm =
  Cml.make ~name:"hotelA"
    ~binaries:
      [
        Cml.rel ~kind:Cml.PartOf "roomOf" ~src:"Room" ~dst:"Hotel"
          ~card:(Cardinality.exactly_one, Cardinality.at_least_one);
        Cml.functional "locatedIn" ~src:"Hotel" ~dst:"City";
      ]
    ~reified:
      [
        Cml.reified ~attrs:[ "checkin"; "checkout" ] "booking"
          [
            ("booker", "Guest", Cardinality.many);
            ("booked", "Room", Cardinality.many);
          ];
        Cml.reified "hasAmenity"
          [
            ("amen_hotel", "Hotel", Cardinality.many);
            ("amen_what", "Amenity", Cardinality.many);
          ];
      ]
    [
      Cml.cls ~id:[ "hid" ] "Hotel" [ "hid"; "hname"; "stars" ];
      Cml.cls ~id:[ "rno" ] "Room" [ "rno"; "rate" ];
      Cml.cls ~id:[ "gname" ] "Guest" [ "gname" ];
      Cml.cls ~id:[ "aname" ] "Amenity" [ "aname" ];
      Cml.cls ~id:[ "cityname" ] "City" [ "cityname" ];
    ]

let hotela = lazy (Design.design hotela_cm)

(* ---- HotelB ontology (independent modelling) ---- *)

let hotelb_cm =
  Cml.make ~name:"hotelB"
    ~binaries:
      [
        Cml.rel ~kind:Cml.PartOf "unitOf" ~src:"Unit" ~dst:"Accommodation"
          ~card:(Cardinality.exactly_one, Cardinality.at_least_one);
        Cml.functional "inTown" ~src:"Accommodation" ~dst:"Town";
      ]
    ~reified:
      [
        Cml.reified ~attrs:[ "arrive"; "depart" ] "reservation"
          [
            ("res_customer", "Customer", Cardinality.many);
            ("res_unit", "Unit", Cardinality.many);
          ];
        Cml.reified "offers"
          [
            ("off_acc", "Accommodation", Cardinality.many);
            ("off_feature", "Feature", Cardinality.many);
          ];
      ]
    [
      Cml.cls ~id:[ "aid" ] "Accommodation" [ "aid"; "accname"; "rating" ];
      Cml.cls ~id:[ "uno" ] "Unit" [ "uno"; "price" ];
      Cml.cls ~id:[ "custname" ] "Customer" [ "custname" ];
      Cml.cls ~id:[ "feat" ] "Feature" [ "feat" ];
      Cml.cls ~id:[ "town" ] "Town" [ "town" ];
    ]

(* standalone tables for functional relationships on side B *)
let hotelb =
  lazy
    (Design.design
       ~config:{ Design.default_config with merge_functional = false }
       hotelb_cm)

let scenario () =
  let src_schema, src_strees = Lazy.force hotela in
  let tgt_schema, tgt_strees = Lazy.force hotelb in
  let source = Discover.side ~schema:src_schema ~cm:hotela_cm src_strees in
  let target = Discover.side ~schema:tgt_schema ~cm:hotelb_cm tgt_strees in
  let bench = Scenario.bench ~source:src_schema ~target:tgt_schema in
  let corr = Smg_cq.Mapping.corr_of_strings in
  let cases =
    [
      {
        Scenario.case_name = "hotel-in-city";
        corrs =
          [
            corr "hotel.hname" "accommodation.accname";
            corr "city.cityname" "town.town";
          ];
        benchmark =
          [
            bench ~name:"hotel-in-city"
              ~src:
                [
                  ("hotel", [ ("hname", "v0"); ("locatedIn_cityname", "t") ]);
                  ("city", [ ("cityname", "t") ]);
                ]
              ~tgt:
                [
                  ("accommodation", [ ("aid", "a"); ("accname", "v0") ]);
                  ("intown", [ ("aid", "a"); ("town", "t") ]);
                  ("town", [ ("town", "t") ]);
                ]
              ~covered:
                [
                  ("hotel.hname", "accommodation.accname");
                  ("city.cityname", "town.town");
                ]
              ~src_head:[ "v0"; "t" ] ~tgt_head:[ "v0"; "t" ] ();
          ];
      };
      {
        Scenario.case_name = "room-rate";
        corrs =
          [
            corr "room.rate" "unit.price";
            corr "hotel.hname" "accommodation.accname";
          ];
        benchmark =
          [
            bench ~name:"room-rate"
              ~src:
                [
                  ("room", [ ("rate", "v0"); ("roomOf_hid", "h") ]);
                  ("hotel", [ ("hid", "h"); ("hname", "v1") ]);
                ]
              ~tgt:
                [
                  ("unit", [ ("uno", "u"); ("price", "v0") ]);
                  ("unitof", [ ("uno", "u"); ("aid", "a") ]);
                  ("accommodation", [ ("aid", "a"); ("accname", "v1") ]);
                ]
              ~covered:
                [
                  ("room.rate", "unit.price");
                  ("hotel.hname", "accommodation.accname");
                ]
              ~src_head:[ "v0"; "v1" ] ~tgt_head:[ "v0"; "v1" ] ();
          ];
      };
      {
        Scenario.case_name = "booking-dates";
        corrs =
          [
            corr "booking.checkin" "reservation.arrive";
            corr "guest.gname" "customer.custname";
          ];
        benchmark =
          [
            bench ~name:"booking-dates"
              ~src:
                [
                  ("booking", [ ("gname", "g"); ("checkin", "v0") ]);
                  ("guest", [ ("gname", "g") ]);
                ]
              ~tgt:
                [
                  ("reservation", [ ("custname", "g"); ("arrive", "v0") ]);
                  ("customer", [ ("custname", "g") ]);
                ]
              ~covered:
                [
                  ("booking.checkin", "reservation.arrive");
                  ("guest.gname", "customer.custname");
                ]
              ~src_head:[ "v0"; "g" ] ~tgt_head:[ "v0"; "g" ] ();
          ];
      };
      {
        Scenario.case_name = "amenities";
        corrs =
          [
            corr "amenity.aname" "feature.feat";
            corr "hotel.hname" "accommodation.accname";
          ];
        benchmark =
          [
            bench ~name:"amenities"
              ~src:
                [
                  ("hotel", [ ("hid", "h"); ("hname", "v0") ]);
                  ("hasamenity", [ ("hid", "h"); ("aname", "a") ]);
                  ("amenity", [ ("aname", "a") ]);
                ]
              ~tgt:
                [
                  ("accommodation", [ ("aid", "x"); ("accname", "v0") ]);
                  ("offers", [ ("aid", "x"); ("feat", "a") ]);
                  ("feature", [ ("feat", "a") ]);
                ]
              ~covered:
                [
                  ("amenity.aname", "feature.feat");
                  ("hotel.hname", "accommodation.accname");
                ]
              ~src_head:[ "a"; "v0" ] ~tgt_head:[ "a"; "v0" ] ();
          ];
      };
      {
        Scenario.case_name = "guest-city";
        corrs =
          [
            corr "guest.gname" "customer.custname";
            corr "city.cityname" "town.town";
          ];
        benchmark =
          [
            bench ~name:"guest-city"
              ~src:
                [
                  ("guest", [ ("gname", "v0") ]);
                  ("booking", [ ("gname", "v0"); ("rno", "r") ]);
                  ("room", [ ("rno", "r"); ("roomOf_hid", "h") ]);
                  ("hotel", [ ("hid", "h"); ("locatedIn_cityname", "t") ]);
                  ("city", [ ("cityname", "t") ]);
                ]
              ~tgt:
                [
                  ("customer", [ ("custname", "v0") ]);
                  ("reservation", [ ("custname", "v0"); ("uno", "u") ]);
                  ("unit", [ ("uno", "u") ]);
                  ("unitof", [ ("uno", "u"); ("aid", "a") ]);
                  ("intown", [ ("aid", "a"); ("town", "t") ]);
                  ("town", [ ("town", "t") ]);
                ]
              ~covered:
                [
                  ("guest.gname", "customer.custname");
                  ("city.cityname", "town.town");
                ]
              ~src_head:[ "v0"; "t" ] ~tgt_head:[ "v0"; "t" ] ();
          ];
      };
    ]
  in
  let scen =
    {
      Scenario.scen_name = "Hotel";
      source_label = "HotelA";
      target_label = "HotelB";
      source_cm_label = "hotelA onto.";
      target_cm_label = "hotelB onto.";
      source;
      target;
      cases;
    }
  in
  Scenario.validate scen;
  scen
