(** Amalgam bibliography domain (Table 1 rows Amalgam1/Amalgam2):
    student-designed schema pair where the two sides encode the same ISA
    hierarchies differently and identify people by different keys — the
    Example 1.2 situations where the paper's semantic technique "fared
    best". Seven benchmark cases. *)

val scenario : unit -> Scenario.t
