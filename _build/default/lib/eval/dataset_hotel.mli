(** Hotel domain (Table 1 rows HotelA/HotelB): two independently
    modelled hotel ontologies (as in the I3CON alignment data),
    forward-engineered into relational schemas with *different* er2rel
    configurations — side A merges functional relationships into entity
    tables, side B gives them standalone tables — so the same concepts
    surface with different table structure. Five benchmark cases,
    including a long many-many composition (guest → booking → room →
    hotel → city). *)

val scenario : unit -> Scenario.t
