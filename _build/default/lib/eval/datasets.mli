(** All evaluation scenarios (Table 1 rows), lazily constructed. *)

val all : unit -> Scenario.t list
