let all () =
  [
    Dataset_dblp.scenario ();
    Dataset_mondial.scenario ();
    Dataset_amalgam.scenario ();
    Dataset_threesdb.scenario ();
    Dataset_ut.scenario ();
    Dataset_hotel.scenario ();
    Dataset_network.scenario ();
  ]
