module Schema = Smg_relational.Schema
module Atom = Smg_cq.Atom
module Query = Smg_cq.Query
module Mapping = Smg_cq.Mapping

type logical_relation = { lr_root : string; lr_atoms : Atom.t list }

let var_of ~table ~occurrence ~column =
  Printf.sprintf "%s%d_%s" table occurrence column

let table_atom schema table ~occurrence =
  let t = Schema.find_table_exn schema table in
  Atom.atom table
    (List.map
       (fun c -> Atom.Var (var_of ~table ~occurrence ~column:c))
       (Schema.column_names t))

let arg_of schema (a : Atom.t) column =
  let t = Schema.find_table_exn schema a.Atom.pred in
  let rec go cols args =
    match (cols, args) with
    | c :: _, v :: _ when String.equal c column -> v
    | _ :: cs, _ :: vs -> go cs vs
    | _, _ -> invalid_arg (Printf.sprintf "no column %s in %s" column a.pred)
  in
  go (Schema.column_names t) a.args

(* Chase the RICs from one root table.  Each (atom, ric) pair fires at
   most once; a referenced atom is reused when one with the same
   referenced-column variables already exists (this keeps cyclic RICs
   finite and merges shared targets, as in Clio's logical relations). *)
let chase_from ?(max_atoms = 24) schema root =
  let occ = Hashtbl.create 8 in
  let next_occ table =
    let n = Option.value ~default:0 (Hashtbl.find_opt occ table) in
    Hashtbl.replace occ table (n + 1);
    n
  in
  let atoms = ref [ table_atom schema root ~occurrence:(next_occ root) ] in
  let applied = Hashtbl.create 16 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iteri
      (fun i (a : Atom.t) ->
        List.iter
          (fun (r : Schema.ric) ->
            let key = (i, r.ric_name) in
            if
              String.equal a.Atom.pred r.from_table
              && (not (Hashtbl.mem applied key))
              && List.length !atoms < max_atoms
            then begin
              Hashtbl.replace applied key ();
              let ref_vars = List.map (arg_of schema a) r.from_cols in
              let exists =
                List.exists
                  (fun (b : Atom.t) ->
                    String.equal b.Atom.pred r.to_table
                    && List.for_all2
                         (fun c v -> Atom.equal_term (arg_of schema b c) v)
                         r.to_cols ref_vars)
                  !atoms
              in
              if not exists then begin
                let o = next_occ r.to_table in
                let t = Schema.find_table_exn schema r.to_table in
                let pairings = List.combine r.to_cols ref_vars in
                let args =
                  List.map
                    (fun c ->
                      match List.assoc_opt c pairings with
                      | Some v -> v
                      | None ->
                          Atom.Var
                            (var_of ~table:r.to_table ~occurrence:o ~column:c))
                    (Schema.column_names t)
                in
                atoms := !atoms @ [ Atom.atom r.to_table args ];
                changed := true
              end
            end)
          schema.Schema.rics)
      !atoms
  done;
  { lr_root = root; lr_atoms = !atoms }

let logical_relations ?max_atoms schema =
  List.map
    (fun (t : Schema.table) -> chase_from ?max_atoms schema t.Schema.tbl_name)
    schema.Schema.tables

(* Remove unnecessary joins ([Fuxman et al. VLDB'06]): drop leaf atoms
   (sharing variables with at most one other atom) that do not
   contribute correspondence-covered attributes. The *first* occurrence
   of each covered table supplies the attributes; later chased
   occurrences of the same table are prunable, which keeps cyclic RIC
   chains from surviving into the mapping. Chased logical relations are
   tree-shaped, so leaf pruning finds the minimal connected sub-join
   containing the required atoms. *)
let prune_atoms atoms ~required_tables =
  let required =
    List.filter_map
      (fun t ->
        List.find_opt (fun (a : Atom.t) -> String.equal a.Atom.pred t) atoms)
      required_tables
  in
  let is_required a = List.exists (fun r -> r == a) required in
  let shares a b =
    List.exists
      (fun t ->
        match t with
        | Atom.Var _ -> List.exists (Atom.equal_term t) b.Atom.args
        | Atom.Cst _ -> false)
      a.Atom.args
  in
  let rec loop atoms =
    let removable =
      List.find_opt
        (fun (a : Atom.t) ->
          (not (is_required a))
          && List.length
               (List.filter
                  (fun (b : Atom.t) -> (not (b == a)) && shares a b)
                  atoms)
             <= 1
          && List.length atoms > 1)
        atoms
    in
    match removable with
    | None -> atoms
    | Some a -> loop (List.filter (fun b -> not (b == a)) atoms)
  in
  loop atoms

let generate ~source ~target ~corrs =
  let src_lrs = logical_relations source in
  let tgt_lrs = logical_relations target in
  let tables_of lr =
    List.sort_uniq compare (List.map (fun (a : Atom.t) -> a.Atom.pred) lr.lr_atoms)
  in
  let candidates =
    List.concat_map
      (fun s_lr ->
        let s_tables = tables_of s_lr in
        List.filter_map
          (fun t_lr ->
            let t_tables = tables_of t_lr in
            let covered =
              List.filter
                (fun (c : Mapping.corr) ->
                  List.mem (fst c.Mapping.c_src) s_tables
                  && List.mem (fst c.Mapping.c_tgt) t_tables)
                corrs
            in
            if covered = [] then None
            else begin
              let s_required =
                List.sort_uniq compare
                  (List.map (fun c -> fst c.Mapping.c_src) covered)
              in
              let t_required =
                List.sort_uniq compare
                  (List.map (fun c -> fst c.Mapping.c_tgt) covered)
              in
              let s_atoms = prune_atoms s_lr.lr_atoms ~required_tables:s_required in
              let t_atoms = prune_atoms t_lr.lr_atoms ~required_tables:t_required in
              let first_atom atoms table =
                List.find
                  (fun (a : Atom.t) -> String.equal a.Atom.pred table)
                  atoms
              in
              let src_head =
                List.map
                  (fun c ->
                    let t, col = c.Mapping.c_src in
                    arg_of source (first_atom s_atoms t) col)
                  covered
              in
              let tgt_head =
                List.map
                  (fun c ->
                    let t, col = c.Mapping.c_tgt in
                    arg_of target (first_atom t_atoms t) col)
                  covered
              in
              let name =
                Printf.sprintf "ric:%s→%s" s_lr.lr_root t_lr.lr_root
              in
              let score =
                float_of_int (List.length s_atoms + List.length t_atoms)
              in
              Some
                (Mapping.make ~name ~score
                   ~src_query:(Query.make ~name:"src" ~head:src_head s_atoms)
                   ~tgt_query:(Query.make ~name:"tgt" ~head:tgt_head t_atoms)
                   ~covered ())
            end)
          tgt_lrs)
      src_lrs
  in
  let deduped =
    List.fold_left
      (fun acc m ->
        if List.exists (Mapping.same m) acc then acc else m :: acc)
      [] candidates
  in
  List.sort (fun a b -> compare a.Mapping.score b.Mapping.score) deduped

let pp_logical_relation ppf lr =
  Fmt.pf ppf "@[<hov2>LR(%s):@ %a@]" lr.lr_root
    (Fmt.list ~sep:(Fmt.any " ⋈ ") Atom.pp)
    lr.lr_atoms
