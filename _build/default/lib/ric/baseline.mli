(** The RIC-based mapping-generation baseline (Clio, [Popa et al.
    VLDB'02]), as described in §1/§4 of the paper.

    Logical relations are assembled by chasing referential integrity
    constraints from each table; every pair of a source and a target
    logical relation that covers at least one correspondence yields a
    candidate mapping. Before pairing, the "remove unnecessary joins"
    heuristic of [Fuxman et al. VLDB'06] prunes chased atoms that do not
    contribute correspondence-covered columns. *)

type logical_relation = {
  lr_root : string;            (** the table the chase started from *)
  lr_atoms : Smg_cq.Atom.t list;  (** joined table atoms (shared variables) *)
}

val logical_relations :
  ?max_atoms:int -> Smg_relational.Schema.t -> logical_relation list
(** One logical relation per table of the schema. The chase merges
    referenced atoms when their referenced columns already carry the
    same variables; each RIC fires at most once per atom, and the
    total atom count is bounded by [max_atoms] (default 24) so cyclic
    RICs that keep inventing fresh variables terminate (Clio bounds its
    unfolding the same way). *)

val var_of : table:string -> occurrence:int -> column:string -> string
(** Naming scheme of the chase variables (exposed for tests). *)

val generate :
  source:Smg_relational.Schema.t ->
  target:Smg_relational.Schema.t ->
  corrs:Smg_cq.Mapping.corr list ->
  Smg_cq.Mapping.t list
(** All candidate mappings, deduplicated with {!Smg_cq.Mapping.same} and
    sorted by score (number of atoms). *)

val pp_logical_relation : Format.formatter -> logical_relation -> unit
