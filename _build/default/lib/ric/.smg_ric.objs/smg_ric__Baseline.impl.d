lib/ric/baseline.ml: Fmt Hashtbl List Option Printf Smg_cq Smg_relational String
