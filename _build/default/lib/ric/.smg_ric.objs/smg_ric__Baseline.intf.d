lib/ric/baseline.mli: Format Smg_cq Smg_relational
