(** Hand-written lexer for the scenario description language. *)

type token =
  | IDENT of string
  | INT of int
  | STRING of string  (** double-quoted; backslash escapes the next character *)
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COLON
  | SEMI
  | COMMA
  | DOT
  | DDOT     (** [..] *)
  | STAR
  | ARROW    (** [->] *)
  | BIDIR    (** [<->] *)
  | DASHDASH (** [--] *)
  | DASH     (** [-] *)
  | LT
  | EQ
  | EOF

type located = { tok : token; line : int; col : int }

exception Error of string * int * int
(** (message, line, column) *)

val tokenize : string -> located list
(** Comments run from [#] to end of line. @raise Error on foreign
    characters. *)

val pp_token : Format.formatter -> token -> unit
