type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COLON
  | SEMI
  | COMMA
  | DOT
  | DDOT
  | STAR
  | ARROW
  | BIDIR
  | DASHDASH
  | DASH
  | LT
  | EQ
  | EOF

type located = { tok : token; line : int; col : int }

exception Error of string * int * int

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '~'
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let emit tok = toks := { tok; line = !line; col = !col } :: !toks in
  let advance k =
    for j = !i to min (n - 1) (!i + k - 1) do
      if src.[j] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col
    done;
    i := !i + k
  in
  let peek off = if !i + off < n then Some src.[!i + off] else None in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance 1
    else if c = '#' then begin
      while !i < n && src.[!i] <> '\n' do
        advance 1
      done
    end
    else if is_ident_start c then begin
      let start = !i in
      let len = ref 0 in
      while !i + !len < n && is_ident_char src.[!i + !len] do
        incr len
      done;
      emit (IDENT (String.sub src start !len));
      advance !len
    end
    else if c = '"' then begin
      (* string literal; backslash escapes the next character *)
      let b = Buffer.create 16 in
      let j = ref (!i + 1) in
      let closed = ref false in
      while (not !closed) && !j < n do
        (match src.[!j] with
        | '"' -> closed := true
        | '\\' when !j + 1 < n ->
            Buffer.add_char b src.[!j + 1];
            incr j
        | ch -> Buffer.add_char b ch);
        incr j
      done;
      if not !closed then
        raise (Error ("unterminated string literal", !line, !col));
      emit (STRING (Buffer.contents b));
      advance (!j - !i)
    end
    else if is_digit c then begin
      let start = !i in
      let len = ref 0 in
      while !i + !len < n && is_digit src.[!i + !len] do
        incr len
      done;
      emit (INT (int_of_string (String.sub src start !len)));
      advance !len
    end
    else
      match (c, peek 1, peek 2) with
      | '<', Some '-', Some '>' ->
          emit BIDIR;
          advance 3
      | '-', Some '>', _ ->
          emit ARROW;
          advance 2
      | '-', Some '-', _ ->
          emit DASHDASH;
          advance 2
      | '.', Some '.', _ ->
          emit DDOT;
          advance 2
      | '{', _, _ ->
          emit LBRACE;
          advance 1
      | '}', _, _ ->
          emit RBRACE;
          advance 1
      | '(', _, _ ->
          emit LPAREN;
          advance 1
      | ')', _, _ ->
          emit RPAREN;
          advance 1
      | ':', _, _ ->
          emit COLON;
          advance 1
      | ';', _, _ ->
          emit SEMI;
          advance 1
      | ',', _, _ ->
          emit COMMA;
          advance 1
      | '.', _, _ ->
          emit DOT;
          advance 1
      | '*', _, _ ->
          emit STAR;
          advance 1
      | '-', _, _ ->
          emit DASH;
          advance 1
      | '<', _, _ ->
          emit LT;
          advance 1
      | '=', _, _ ->
          emit EQ;
          advance 1
      | _ ->
          raise (Error (Printf.sprintf "unexpected character %C" c, !line, !col))
  done;
  emit EOF;
  List.rev !toks

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %S" s
  | INT k -> Fmt.pf ppf "integer %d" k
  | STRING s -> Fmt.pf ppf "string %S" s
  | LBRACE -> Fmt.string ppf "'{'"
  | RBRACE -> Fmt.string ppf "'}'"
  | LPAREN -> Fmt.string ppf "'('"
  | RPAREN -> Fmt.string ppf "')'"
  | COLON -> Fmt.string ppf "':'"
  | SEMI -> Fmt.string ppf "';'"
  | COMMA -> Fmt.string ppf "','"
  | DOT -> Fmt.string ppf "'.'"
  | DDOT -> Fmt.string ppf "'..'"
  | STAR -> Fmt.string ppf "'*'"
  | ARROW -> Fmt.string ppf "'->'"
  | BIDIR -> Fmt.string ppf "'<->'"
  | DASHDASH -> Fmt.string ppf "'--'"
  | DASH -> Fmt.string ppf "'-'"
  | LT -> Fmt.string ppf "'<'"
  | EQ -> Fmt.string ppf "'='"
  | EOF -> Fmt.string ppf "end of input"
