lib/dsl/printer.ml: Ast Fmt List Smg_cm Smg_cq Smg_relational Smg_semantics String
