lib/dsl/ast.ml: Array List Smg_cm Smg_cq Smg_relational Smg_semantics String
