lib/dsl/printer.mli: Ast Format Smg_cm Smg_cq Smg_relational
