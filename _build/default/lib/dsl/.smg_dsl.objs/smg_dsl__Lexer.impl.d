lib/dsl/lexer.ml: Buffer Fmt List Printf String
