lib/dsl/ast.mli: Smg_cm Smg_cq Smg_relational Smg_semantics
