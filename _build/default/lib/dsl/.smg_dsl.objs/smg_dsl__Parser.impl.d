lib/dsl/parser.ml: Ast Fmt Lexer List Printf Smg_cm Smg_cq Smg_relational Smg_semantics String
