(** Recursive-descent parser for the scenario description language.

    Grammar sketch (see the README for a complete example):
    {v
    document   := (schema | cm | semantics | corr)*
    schema     := "schema" IDENT "{" (table | ric)* "}"
    table      := "table" IDENT "{" (col | key)* "}"
    col        := "col" IDENT ":" type ";"
    key        := "key" "(" idents ")" ";"
    ric        := "ric" IDENT ":" IDENT "(" idents ")" "->" IDENT "(" idents ")" ";"
    cm         := "cm" IDENT "{" (class | rel | reified | isa | disjoint | cover)* "}"
    class      := "class" IDENT "{" ["attrs" "(" idents ")" ";"] ["id" "(" idents ")" ";"] "}"
    rel        := ("rel" | "partof") IDENT ":" IDENT card "--" card IDENT ";"
    card       := "(" INT ".." (INT | "*") ")"
    reified    := "reified" IDENT ["partof"] "{" (role | "attrs" ...)* "}"
    role       := "role" IDENT ":" IDENT card ";"
    isa        := "isa" IDENT "<" IDENT ";"
    disjoint   := "disjoint" "(" idents ")" ";"
    cover      := "cover" IDENT "=" "(" idents ")" ";"
    semantics  := "semantics" IDENT "{" (node | anchor | edge | colmap | id)* "}"
    node       := "node" noderef ";"
    anchor     := "anchor" noderef ";"
    edge       := "edge" noderef "-" ("rel" | "role") IDENT "->" noderef ";"
                | "edge" noderef "-" "isa" "->" noderef ";"
    colmap     := "col" IDENT "->" noderef "." IDENT ";"
    id         := "id" noderef "(" idents ")" ";"
    corr       := "corr" IDENT "." IDENT "<->" IDENT "." IDENT ";"
    data       := "data" IDENT "{" ("row" "(" value ("," value)* ")" ";")* "}"
    value      := STRING | INT | "null" | "true" | "false"
    v}
    Node references use [~k] suffixes for copies, e.g. [Person~1]. *)

exception Error of string
(** Parse error with location information in the message. *)

val parse : string -> Ast.t
(** @raise Error on malformed input; CM/schema validation errors from
    the underlying constructors propagate as [Invalid_argument]. *)

val parse_file : string -> Ast.t
