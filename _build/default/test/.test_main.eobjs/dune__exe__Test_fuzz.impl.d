test/test_fuzz.ml: Fmt Fun List Printf QCheck QCheck_alcotest Smg_cm Smg_core Smg_cq Smg_er2rel Smg_relational Smg_ric
