test/test_matching.ml: Alcotest Fixtures List Option Smg_cq Smg_matching
