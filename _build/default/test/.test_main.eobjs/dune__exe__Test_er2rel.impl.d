test/test_er2rel.ml: Alcotest Fixtures List Smg_cm Smg_core Smg_er2rel Smg_relational Smg_semantics
