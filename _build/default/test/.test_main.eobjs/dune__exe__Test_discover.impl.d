test/test_discover.ml: Alcotest Array Fixtures List Option Smg_core Smg_cq Smg_eval Smg_relational Smg_semantics String
