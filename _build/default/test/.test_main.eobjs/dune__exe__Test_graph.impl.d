test/test_graph.ml: Alcotest Array List Printf QCheck QCheck_alcotest Smg_graph String
