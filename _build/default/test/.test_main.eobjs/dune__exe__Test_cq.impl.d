test/test_cq.ml: Alcotest Array Fmt List Option QCheck QCheck_alcotest Smg_cq Smg_relational
