test/test_eval.ml: Alcotest Fixtures Lazy List Smg_core Smg_cq Smg_eval Smg_relational
