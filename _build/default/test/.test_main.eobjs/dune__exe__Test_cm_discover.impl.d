test/test_cm_discover.ml: Alcotest List Smg_cm Smg_core Smg_cq Smg_semantics
