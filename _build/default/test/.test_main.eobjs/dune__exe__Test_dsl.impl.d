test/test_dsl.ml: Alcotest List Smg_cm Smg_core Smg_dsl Smg_er2rel Smg_eval Smg_relational Smg_semantics String
