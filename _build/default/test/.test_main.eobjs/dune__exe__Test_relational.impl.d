test/test_relational.ml: Alcotest Array List QCheck QCheck_alcotest Smg_relational
