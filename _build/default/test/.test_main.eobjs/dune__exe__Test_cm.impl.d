test/test_cm.ml: Alcotest List Option Smg_cm Smg_graph
