test/test_semantics.ml: Alcotest Fixtures Lazy List Smg_cm Smg_cq Smg_graph Smg_relational Smg_semantics
