test/test_sql.ml: Alcotest Fixtures List Smg_cm Smg_core Smg_cq Smg_relational String
