test/test_ric.ml: Alcotest Fixtures List Smg_cq Smg_relational Smg_ric
