(* Tests for Smg_cq: atoms, query containment/minimization/evaluation,
   dependencies, the chase, mappings. *)

module Value = Smg_relational.Value
module Schema = Smg_relational.Schema
module Instance = Smg_relational.Instance
module Atom = Smg_cq.Atom
module Query = Smg_cq.Query
module Dependency = Smg_cq.Dependency
module Chase = Smg_cq.Chase
module Mapping = Smg_cq.Mapping

let v = Atom.v
let a = Atom.atom
let q ?name ~head body = Query.make ?name ~head body

(* ---- atoms ----- *)

let test_atom_subst () =
  let s = Atom.Subst.of_list [ ("x", v "y"); ("z", Atom.str "k") ] in
  let at = a "r" [ v "x"; v "z"; v "w" ] in
  let at' = Atom.apply s at in
  Alcotest.(check bool) "substituted" true
    (Atom.equal at' (a "r" [ v "y"; Atom.str "k"; v "w" ]))

let test_atom_vars () =
  Alcotest.(check (list string)) "vars in order, deduped" [ "x"; "y" ]
    (Atom.vars_of_list [ a "r" [ v "x"; v "y" ]; a "s" [ v "y"; v "x" ] ])

(* ---- containment ----- *)

(* q1(x) :- r(x,y), r(y,z)   q2(x) :- r(x,y)   q1 ⊆ q2 *)
let q1 = q ~head:[ v "x" ] [ a "r" [ v "x"; v "y" ]; a "r" [ v "y"; v "z" ] ]
let q2 = q ~head:[ v "x" ] [ a "r" [ v "x"; v "y" ] ]

let test_containment_basic () =
  Alcotest.(check bool) "q1 ⊆ q2" true (Query.contained_in q1 q2);
  Alcotest.(check bool) "q2 ⊄ q1" false (Query.contained_in q2 q1)

let test_containment_head_respected () =
  (* Same bodies, swapped heads: not contained. *)
  let qa = q ~head:[ v "x"; v "y" ] [ a "r" [ v "x"; v "y" ] ] in
  let qb = q ~head:[ v "y"; v "x" ] [ a "r" [ v "x"; v "y" ] ] in
  Alcotest.(check bool) "swapped heads differ" false (Query.contained_in qa qb)

let test_containment_head_var_rigid () =
  (* Regression for the seed bug: a head variable mapped to itself must
     stay pinned, not rebind to a fresh variable of the other body. *)
  let safe = q ~head:[ v "v0"; v "v1" ] [ a "t" [ v "v0"; v "v1" ] ] in
  let unsafe = q ~head:[ v "v0"; v "v1" ] [ a "t" [ v "f"; v "v1" ] ] in
  Alcotest.(check bool) "unsafe-headed not contained in safe" false
    (Query.contained_in unsafe safe);
  Alcotest.(check bool) "not equivalent" false (Query.equivalent safe unsafe)

let test_constants_in_containment () =
  let qc = q ~head:[ v "x" ] [ a "r" [ v "x"; Atom.str "fixed" ] ] in
  Alcotest.(check bool) "constant query ⊆ general" true
    (Query.contained_in qc q2);
  Alcotest.(check bool) "general ⊄ constant" false (Query.contained_in q2 qc)

let test_equivalence_renaming () =
  let qa = q ~head:[ v "x" ] [ a "r" [ v "x"; v "y" ] ] in
  let qb = q ~head:[ v "u" ] [ a "r" [ v "u"; v "w" ] ] in
  Alcotest.(check bool) "alpha-equivalent" true (Query.equivalent qa qb)

let test_minimize () =
  (* r(x,y), r(x,z) minimizes to r(x,y) *)
  let qq = q ~head:[ v "x" ] [ a "r" [ v "x"; v "y" ]; a "r" [ v "x"; v "z" ] ] in
  let m = Query.minimize qq in
  Alcotest.(check int) "one atom after minimization" 1 (List.length m.Query.body);
  Alcotest.(check bool) "still equivalent" true (Query.equivalent qq m)

let test_minimize_keeps_needed () =
  let m = Query.minimize q1 in
  Alcotest.(check int) "path query is its own core" 2
    (List.length m.Query.body)

(* ---- evaluation ----- *)

let db_schema =
  Schema.make ~name:"db"
    [
      Schema.table "r" [ ("a", Schema.TString); ("b", Schema.TString) ];
      Schema.table "s" [ ("b", Schema.TString); ("c", Schema.TString) ];
    ]
    []

let db =
  let vs s = Value.VString s in
  Instance.empty
  |> fun i -> Instance.add_tuple i "r" ~header:[ "a"; "b" ] [| vs "1"; vs "2" |]
  |> fun i -> Instance.add_tuple i "r" ~header:[ "a"; "b" ] [| vs "2"; vs "3" |]
  |> fun i -> Instance.add_tuple i "s" ~header:[ "b"; "c" ] [| vs "2"; vs "9" |]

let test_eval_join () =
  let query =
    q ~head:[ v "x"; v "z" ] [ a "r" [ v "x"; v "y" ]; a "s" [ v "y"; v "z" ] ]
  in
  let rel = Query.eval db_schema db query in
  Alcotest.(check int) "one joined answer" 1 (List.length rel.Instance.tuples);
  Alcotest.(check bool) "answer is (1,9)" true
    (Value.equal (List.hd rel.Instance.tuples).(0) (Value.VString "1"))

let test_eval_constant_filter () =
  let query = q ~head:[ v "y" ] [ a "r" [ Atom.str "2"; v "y" ] ] in
  let rel = Query.eval db_schema db query in
  Alcotest.(check int) "filtered by constant" 1 (List.length rel.Instance.tuples)

let test_eval_repeated_var () =
  let query = q ~head:[ v "x" ] [ a "r" [ v "x"; v "x" ] ] in
  let rel = Query.eval db_schema db query in
  Alcotest.(check int) "no reflexive r" 0 (List.length rel.Instance.tuples)

(* ---- dependencies & chase ----- *)

let test_tgd_vars () =
  let t =
    Dependency.tgd ~name:"t" ~lhs:[ a "r" [ v "x"; v "y" ] ]
      [ a "s" [ v "y"; v "z" ] ]
  in
  Alcotest.(check (list string)) "universal" [ "y" ] (Dependency.universal_vars t);
  Alcotest.(check (list string)) "existential" [ "z" ]
    (Dependency.existential_vars t)

let test_chase_tgd () =
  (* every r(x,y) implies s(y,z) *)
  let t =
    Dependency.tgd ~name:"t" ~lhs:[ a "r" [ v "x"; v "y" ] ]
      [ a "s" [ v "y"; v "z" ] ]
  in
  match Chase.run ~schema:db_schema ~tgds:[ t ] ~egds:[] db with
  | Chase.Saturated i ->
      (* s already has b=2; the chase adds one for b=3 *)
      Alcotest.(check int) "s grew by one" 2 (Instance.cardinality i "s")
  | Chase.Bounded _ -> Alcotest.fail "chase should saturate"
  | Chase.Failed m -> Alcotest.fail ("chase failed: " ^ m)

let test_chase_does_not_refire () =
  let t =
    Dependency.tgd ~name:"t" ~lhs:[ a "r" [ v "x"; v "y" ] ]
      [ a "s" [ v "y"; v "z" ] ]
  in
  match Chase.run ~schema:db_schema ~tgds:[ t ] ~egds:[] db with
  | Chase.Saturated i1 -> (
      match Chase.run ~schema:db_schema ~tgds:[ t ] ~egds:[] i1 with
      | Chase.Saturated i2 ->
          Alcotest.(check int) "idempotent" (Instance.total_tuples i1)
            (Instance.total_tuples i2)
      | _ -> Alcotest.fail "second chase should saturate")
  | _ -> Alcotest.fail "first chase should saturate"

let test_chase_egd_merges_nulls () =
  Value.reset_null_counter ();
  let n1 = Value.fresh_null () in
  let i =
    Instance.empty
    |> fun i ->
    Instance.add_tuple i "r" ~header:[ "a"; "b" ] [| Value.VString "1"; n1 |]
    |> fun i ->
    Instance.add_tuple i "r" ~header:[ "a"; "b" ]
      [| Value.VString "1"; Value.VString "7" |]
  in
  (* key a -> b: the null must merge with "7" *)
  let e =
    Dependency.egd ~name:"key"
      ~lhs:[ a "r" [ v "x"; v "y1" ]; a "r" [ v "x"; v "y2" ] ]
      ("y1", "y2")
  in
  match Chase.run ~schema:db_schema ~tgds:[] ~egds:[ e ] i with
  | Chase.Saturated res ->
      Alcotest.(check int) "tuples merged" 1 (Instance.cardinality res "r")
  | _ -> Alcotest.fail "expected saturation"

let test_chase_egd_conflict () =
  let i =
    Instance.empty
    |> fun i ->
    Instance.add_tuple i "r" ~header:[ "a"; "b" ]
      [| Value.VString "1"; Value.VString "7" |]
    |> fun i ->
    Instance.add_tuple i "r" ~header:[ "a"; "b" ]
      [| Value.VString "1"; Value.VString "8" |]
  in
  let e =
    Dependency.egd ~name:"key"
      ~lhs:[ a "r" [ v "x"; v "y1" ]; a "r" [ v "x"; v "y2" ] ]
      ("y1", "y2")
  in
  match Chase.run ~schema:db_schema ~tgds:[] ~egds:[ e ] i with
  | Chase.Failed _ -> ()
  | _ -> Alcotest.fail "expected an egd failure"

let test_exchange () =
  (* copy r into s, swapping columns and inventing the missing value *)
  let source =
    Schema.make ~name:"src" [ Schema.table "r" [ ("a", Schema.TString); ("b", Schema.TString) ] ] []
  in
  let target =
    Schema.make ~name:"tgt"
      [ Schema.table ~key:[ "b" ] "s" [ ("b", Schema.TString); ("c", Schema.TString) ] ]
      []
  in
  let m =
    Dependency.tgd ~name:"m" ~lhs:[ a "r" [ v "x"; v "y" ] ]
      [ a "s" [ v "y"; v "z" ] ]
  in
  let src_inst =
    Instance.add_tuple Instance.empty "r" ~header:[ "a"; "b" ]
      [| Value.VString "1"; Value.VString "2" |]
  in
  match Chase.exchange ~source ~target ~mappings:[ m ] src_inst with
  | Chase.Saturated i ->
      Alcotest.(check (list string)) "only target relations" [ "s" ]
        (Instance.names i);
      Alcotest.(check int) "one s tuple" 1 (Instance.cardinality i "s");
      let t = List.hd (Option.get (Instance.relation i "s")).Instance.tuples in
      Alcotest.(check bool) "labelled null invented" true (Value.is_null t.(1))
  | _ -> Alcotest.fail "exchange should saturate"

let test_chase_bounded () =
  (* a tgd that keeps inventing values: r(x,y) → r(y,z) never saturates *)
  let t =
    Dependency.tgd ~name:"grow" ~lhs:[ a "r" [ v "x"; v "y" ] ]
      [ a "r" [ v "y"; v "z" ] ]
  in
  match Chase.run ~max_rounds:3 ~schema:db_schema ~tgds:[ t ] ~egds:[] db with
  | Chase.Bounded _ -> ()
  | Chase.Saturated _ -> Alcotest.fail "cannot saturate a growing chase"
  | Chase.Failed m -> Alcotest.fail m

let test_saturate_adds_referenced_atoms () =
  let schema =
    Schema.make ~name:"s"
      [
        Schema.table ~key:[ "a" ] "t" [ ("a", Schema.TString); ("b", Schema.TString) ];
        Schema.table ~key:[ "b" ] "u" [ ("b", Schema.TString) ];
      ]
      [ Schema.ric ~name:"fk" ~from_:("t", [ "b" ]) ~to_:("u", [ "b" ]) ]
  in
  let query = q ~head:[ v "x" ] [ a "t" [ v "x"; v "y" ] ] in
  let sat = Query.saturate ~schema query in
  Alcotest.(check int) "u atom added" 2 (List.length sat.Query.body);
  (* containment under the RIC: t(x,y) ⊆ t(x,y) ∧ u(y) *)
  let bigger = q ~head:[ v "x" ] [ a "t" [ v "x"; v "y" ]; a "u" [ v "y" ] ] in
  Alcotest.(check bool) "contained under RICs" true
    (Query.contained_under ~schema query bigger);
  Alcotest.(check bool) "not contained plainly" false
    (Query.contained_in query bigger)

let test_equal_tgd_alpha () =
  let t1 =
    Dependency.tgd ~name:"t1" ~lhs:[ a "r" [ v "x"; v "y" ] ]
      [ a "s" [ v "y"; v "z" ] ]
  in
  let t2 =
    Dependency.tgd ~name:"t2" ~lhs:[ a "r" [ v "p"; v "q" ] ]
      [ a "s" [ v "q"; v "w" ] ]
  in
  let t3 =
    Dependency.tgd ~name:"t3" ~lhs:[ a "r" [ v "p"; v "q" ] ]
      [ a "s" [ v "p"; v "w" ] ]
  in
  Alcotest.(check bool) "alpha-equivalent tgds" true (Dependency.equal_tgd t1 t2);
  Alcotest.(check bool) "different variable flow" false
    (Dependency.equal_tgd t1 t3)

let test_key_egds_and_ric_tgds () =
  let schema =
    Schema.make ~name:"k"
      [
        Schema.table ~key:[ "id" ] "t" [ ("id", Schema.TInt); ("x", Schema.TInt) ];
        Schema.table ~key:[ "id" ] "u" [ ("id", Schema.TInt) ];
      ]
      [ Schema.ric ~name:"r" ~from_:("t", [ "id" ]) ~to_:("u", [ "id" ]) ]
  in
  Alcotest.(check int) "one egd for the non-key column" 1
    (List.length (Dependency.key_egds schema));
  Alcotest.(check int) "one tgd per ric" 1
    (List.length (Dependency.ric_tgds schema))

(* ---- mappings ----- *)

let mk_mapping () =
  Mapping.make ~name:"m"
    ~src_query:(q ~head:[ v "x" ] [ a "r" [ v "x"; v "y" ] ])
    ~tgt_query:(q ~head:[ v "p" ] [ a "s" [ v "p"; v "q" ] ])
    ~covered:[ Mapping.corr_of_strings "r.a" "s.b" ]
    ()

let test_mapping_tgd () =
  let t = Mapping.to_tgd (mk_mapping ()) in
  Alcotest.(check int) "one existential (q_t)" 1
    (List.length (Dependency.existential_vars t));
  Alcotest.(check (list string)) "x is universal" [ "x" ]
    (Dependency.universal_vars t)

let test_mapping_same_modulo_renaming () =
  let m1 = mk_mapping () in
  let m2 =
    Mapping.make ~name:"m2"
      ~src_query:(q ~head:[ v "u" ] [ a "r" [ v "u"; v "w" ] ])
      ~tgt_query:(q ~head:[ v "h" ] [ a "s" [ v "h"; v "k" ] ])
      ~covered:[ Mapping.corr_of_strings "r.a" "s.b" ]
      ()
  in
  Alcotest.(check bool) "same up to renaming" true (Mapping.same m1 m2)

let test_mapping_same_covered_matters () =
  let m1 = mk_mapping () in
  let m2 =
    Mapping.make ~name:"m2"
      ~src_query:(q ~head:[ v "x" ] [ a "r" [ v "x"; v "y" ] ])
      ~tgt_query:(q ~head:[ v "p" ] [ a "s" [ v "p"; v "q" ] ])
      ~covered:[ Mapping.corr_of_strings "r.b" "s.b" ]
      ()
  in
  Alcotest.(check bool) "different correspondences differ" false
    (Mapping.same m1 m2)

let test_mapping_algebra_eval () =
  (* The algebraic form of a CQ evaluates like the CQ itself. *)
  let query =
    q ~head:[ v "x"; v "z" ] [ a "r" [ v "x"; v "y" ]; a "s" [ v "y"; v "z" ] ]
  in
  let alg = Mapping.algebra_of_query db_schema query in
  let via_alg = Smg_relational.Algebra.eval db_schema db alg in
  let via_cq = Query.eval db_schema db query in
  Alcotest.(check int) "same cardinality"
    (List.length via_cq.Instance.tuples)
    (List.length via_alg.Instance.tuples)

let test_is_trivial () =
  Alcotest.(check bool) "single tables are trivial" true
    (Mapping.is_trivial (mk_mapping ()))

(* ---- property tests ----- *)

let arb_query =
  (* random small queries over predicates r/2, s/2 with vars x0..x3 *)
  let gen =
    QCheck.Gen.(
      let var = map (fun i -> v ("x" ^ string_of_int i)) (int_range 0 3) in
      let atom = map2 (fun p (t1, t2) -> a p [ t1; t2 ])
          (oneofl [ "r"; "s" ]) (pair var var) in
      let* body = list_size (int_range 1 4) atom in
      let* h = var in
      (* keep the head safe: pick a variable of the body *)
      let bvars = Atom.vars_of_list body in
      let h = if List.exists (fun x -> Atom.equal_term (v x) h) bvars then h else v (List.hd bvars) in
      return (q ~head:[ h ] body))
  in
  QCheck.make gen ~print:(fun qq -> Fmt.str "%a" Query.pp qq)

let random_instance seed =
  let vs k = Value.VString ("p" ^ string_of_int (k mod 4)) in
  let rec add i k =
    if k >= 8 then i
    else
      let i =
        Instance.add_tuple i "r" ~header:[ "a"; "b" ]
          [| vs (seed + k); vs (seed + (2 * k) + 1) |]
      in
      let i =
        Instance.add_tuple i "s" ~header:[ "b"; "c" ]
          [| vs (seed + (3 * k)); vs (seed + k + 2) |]
      in
      add i (k + 1)
  in
  add Instance.empty 0

let prop_algebra_agrees_with_cq =
  (* the relational-algebra rendering of a CQ evaluates to the same
     answer set as direct CQ evaluation *)
  QCheck.Test.make ~name:"algebra rendering agrees with CQ evaluation"
    ~count:100
    QCheck.(pair arb_query small_int)
    (fun (qq, seed) ->
      let inst = random_instance seed in
      let via_cq = Query.eval db_schema inst qq in
      let via_alg =
        Smg_relational.Algebra.eval db_schema inst
          (Mapping.algebra_of_query db_schema qq)
      in
      let as_set (r : Instance.relation) =
        List.map
          (fun t -> List.map Value.to_string (Array.to_list t))
          r.Instance.tuples
        |> List.sort compare
      in
      as_set via_cq = as_set via_alg)

let prop_containment_reflexive =
  QCheck.Test.make ~name:"containment is reflexive" ~count:100 arb_query
    (fun qq -> Query.contained_in qq qq)

let prop_minimize_equivalent =
  QCheck.Test.make ~name:"minimization preserves equivalence" ~count:100
    arb_query (fun qq ->
      let m = Query.minimize qq in
      Query.equivalent qq m && List.length m.Query.body <= List.length qq.Query.body)

let prop_minimize_idempotent =
  QCheck.Test.make ~name:"minimization is idempotent" ~count:100 arb_query
    (fun qq ->
      let m = Query.minimize qq in
      List.length (Query.minimize m).Query.body = List.length m.Query.body)

let prop_rename_apart_equivalent =
  QCheck.Test.make ~name:"renaming apart preserves equivalence" ~count:100
    arb_query (fun qq ->
      Query.equivalent qq (Query.rename_apart ~suffix:"_r" qq))

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    ( "cq.atom",
      [
        Alcotest.test_case "substitution" `Quick test_atom_subst;
        Alcotest.test_case "vars" `Quick test_atom_vars;
      ] );
    ( "cq.containment",
      [
        Alcotest.test_case "basic" `Quick test_containment_basic;
        Alcotest.test_case "heads respected" `Quick test_containment_head_respected;
        Alcotest.test_case "head vars rigid (regression)" `Quick
          test_containment_head_var_rigid;
        Alcotest.test_case "constants" `Quick test_constants_in_containment;
        Alcotest.test_case "alpha equivalence" `Quick test_equivalence_renaming;
        Alcotest.test_case "minimize" `Quick test_minimize;
        Alcotest.test_case "minimize keeps core" `Quick test_minimize_keeps_needed;
        qt prop_containment_reflexive;
        qt prop_minimize_equivalent;
        qt prop_minimize_idempotent;
        qt prop_rename_apart_equivalent;
        qt prop_algebra_agrees_with_cq;
      ] );
    ( "cq.eval",
      [
        Alcotest.test_case "join" `Quick test_eval_join;
        Alcotest.test_case "constant filter" `Quick test_eval_constant_filter;
        Alcotest.test_case "repeated variable" `Quick test_eval_repeated_var;
      ] );
    ( "cq.chase",
      [
        Alcotest.test_case "tgd fires" `Quick test_chase_tgd;
        Alcotest.test_case "no refiring" `Quick test_chase_does_not_refire;
        Alcotest.test_case "egd merges nulls" `Quick test_chase_egd_merges_nulls;
        Alcotest.test_case "egd conflict fails" `Quick test_chase_egd_conflict;
        Alcotest.test_case "data exchange" `Quick test_exchange;
        Alcotest.test_case "schema dependencies" `Quick test_key_egds_and_ric_tgds;
        Alcotest.test_case "bounded chase" `Quick test_chase_bounded;
        Alcotest.test_case "saturation / contained_under" `Quick
          test_saturate_adds_referenced_atoms;
        Alcotest.test_case "tgd variable classification" `Quick test_tgd_vars;
        Alcotest.test_case "tgd equality" `Quick test_equal_tgd_alpha;
      ] );
    ( "cq.mapping",
      [
        Alcotest.test_case "to_tgd" `Quick test_mapping_tgd;
        Alcotest.test_case "same modulo renaming" `Quick test_mapping_same_modulo_renaming;
        Alcotest.test_case "covered matters" `Quick test_mapping_same_covered_matters;
        Alcotest.test_case "algebra agrees with CQ" `Quick test_mapping_algebra_eval;
        Alcotest.test_case "triviality" `Quick test_is_trivial;
      ] );
  ]
