(* Tests for CM-to-CM mapping discovery (the §6 extension). *)

module Cml = Smg_cm.Cml
module Cardinality = Smg_cm.Cardinality
module Cm_discover = Smg_core.Cm_discover
module Query = Smg_cq.Query
module Atom = Smg_cq.Atom

(* source ontology: Person works in Department, chairs via partOf *)
let onto_a =
  Cml.make ~name:"a"
    ~binaries:
      [
        Cml.functional "worksIn" ~src:"Person" ~dst:"Department";
        Cml.functional ~kind:Cml.PartOf "chairs" ~src:"Department" ~dst:"School";
        Cml.functional "reportsTo" ~src:"Department" ~dst:"School";
      ]
    ~reified:
      [
        Cml.reified "authors"
          [
            ("au_p", "Person", Cardinality.many);
            ("au_d", "Document", Cardinality.many);
          ];
      ]
    [
      Cml.cls ~id:[ "pname" ] "Person" [ "pname" ];
      Cml.cls ~id:[ "dname" ] "Department" [ "dname" ];
      Cml.cls ~id:[ "sname" ] "School" [ "sname" ];
      Cml.cls ~id:[ "docid" ] "Document" [ "docid"; "doctitle" ];
    ]

(* target ontology: Employee belongs to Unit, leads via partOf *)
let onto_b =
  Cml.make ~name:"b"
    ~binaries:
      [
        Cml.functional "belongsTo" ~src:"Employee" ~dst:"Unit";
        Cml.functional ~kind:Cml.PartOf "leads" ~src:"Unit" ~dst:"Division";
      ]
    ~reified:
      [
        Cml.reified "writes"
          [
            ("wr_e", "Employee", Cardinality.many);
            ("wr_r", "Report", Cardinality.many);
          ];
      ]
    [
      Cml.cls ~id:[ "ename" ] "Employee" [ "ename" ];
      Cml.cls ~id:[ "uname" ] "Unit" [ "uname" ];
      Cml.cls ~id:[ "divname" ] "Division" [ "divname" ];
      Cml.cls ~id:[ "rid" ] "Report" [ "rid"; "rtitle" ];
    ]

let c = Cm_discover.corr

let body_preds (q : Query.t) =
  List.sort_uniq compare (List.map (fun (a : Atom.t) -> a.Atom.pred) q.Query.body)

let test_functional_pair () =
  let rs =
    Cm_discover.discover ~source:onto_a ~target:onto_b
      ~corrs:
        [
          c ~src:("Person", "pname") ~tgt:("Employee", "ename");
          c ~src:("Department", "dname") ~tgt:("Unit", "uname");
        ]
      ()
  in
  Alcotest.(check bool) "found" true (rs <> []);
  let best = List.hd rs in
  Alcotest.(check bool) "source uses worksIn" true
    (List.mem (Smg_semantics.Encode.rel_pred "worksIn") (body_preds best.Cm_discover.src_query));
  Alcotest.(check bool) "target uses belongsTo" true
    (List.mem (Smg_semantics.Encode.rel_pred "belongsTo") (body_preds best.Cm_discover.tgt_query))

let test_partof_disambiguation () =
  (* chairs (partOf) vs reportsTo (plain) both connect Department and
     School; the target 'leads' is partOf, so strict filtering keeps
     only the chairs pairing. *)
  let rs =
    Cm_discover.discover ~source:onto_a ~target:onto_b
      ~corrs:
        [
          c ~src:("Department", "dname") ~tgt:("Unit", "uname");
          c ~src:("School", "sname") ~tgt:("Division", "divname");
        ]
      ()
  in
  Alcotest.(check int) "only the partOf pairing" 1 (List.length rs);
  Alcotest.(check bool) "uses chairs" true
    (List.mem (Smg_semantics.Encode.rel_pred "chairs")
       (body_preds (List.hd rs).Cm_discover.src_query))

let test_many_many_pair () =
  let rs =
    Cm_discover.discover ~source:onto_a ~target:onto_b
      ~corrs:
        [
          c ~src:("Person", "pname") ~tgt:("Employee", "ename");
          c ~src:("Document", "doctitle") ~tgt:("Report", "rtitle");
        ]
      ()
  in
  Alcotest.(check bool) "found" true (rs <> []);
  let best = List.hd rs in
  Alcotest.(check bool) "reified roles paired" true
    (List.exists
       (fun p -> p = Smg_semantics.Encode.role_pred ~rr:"authors" "au_p")
       (body_preds best.Cm_discover.src_query))

let test_unknown_attribute_rejected () =
  Alcotest.check_raises "unknown attribute"
    (Invalid_argument "cm corr: class Person has no attribute nope")
    (fun () ->
      ignore
        (Cm_discover.discover ~source:onto_a ~target:onto_b
           ~corrs:[ c ~src:("Person", "nope") ~tgt:("Employee", "ename") ]
           ()))

let test_no_corrs () =
  Alcotest.(check int) "empty input, empty output" 0
    (List.length
       (Cm_discover.discover ~source:onto_a ~target:onto_b ~corrs:[] ()))

let suite =
  [
    ( "cm_discover",
      [
        Alcotest.test_case "functional pair" `Quick test_functional_pair;
        Alcotest.test_case "partOf disambiguation" `Quick test_partof_disambiguation;
        Alcotest.test_case "many-many pair" `Quick test_many_many_pair;
        Alcotest.test_case "unknown attribute" `Quick test_unknown_attribute_rejected;
        Alcotest.test_case "no correspondences" `Quick test_no_corrs;
      ] );
  ]
