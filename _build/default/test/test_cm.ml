(* Tests for Smg_cm: cardinalities, CML validation, CM graph compilation,
   path shapes, disjointness consistency. *)

module Cardinality = Smg_cm.Cardinality
module Cml = Smg_cm.Cml
module Cm_graph = Smg_cm.Cm_graph
module Digraph = Smg_graph.Digraph

(* ---- cardinality ----- *)

let test_card_basics () =
  Alcotest.(check bool) "1..1 functional" true
    (Cardinality.is_functional Cardinality.exactly_one);
  Alcotest.(check bool) "0..1 functional" true
    (Cardinality.is_functional Cardinality.at_most_one);
  Alcotest.(check bool) "0..* not functional" false
    (Cardinality.is_functional Cardinality.many);
  Alcotest.(check bool) "1..* total" true
    (Cardinality.is_total Cardinality.at_least_one)

let test_card_compose () =
  let open Cardinality in
  Alcotest.(check bool) "1..1 ∘ 1..1 = 1..1" true
    (equal (compose exactly_one exactly_one) exactly_one);
  Alcotest.(check bool) "0..1 ∘ 1..1 functional" true
    (is_functional (compose at_most_one exactly_one));
  Alcotest.(check bool) "anything ∘ * loses functionality" false
    (is_functional (compose exactly_one many));
  Alcotest.(check bool) "totality needs both total" false
    (is_total (compose at_most_one exactly_one))

let test_card_shape () =
  let open Cardinality in
  Alcotest.(check bool) "one-one" true
    (shape ~forward:exactly_one ~backward:at_most_one = OneOne);
  Alcotest.(check bool) "many-one" true
    (shape ~forward:at_most_one ~backward:many = ManyOne);
  Alcotest.(check bool) "many-many" true
    (shape ~forward:many ~backward:at_least_one = ManyMany)

let test_card_compatible_shape () =
  let open Cardinality in
  Alcotest.(check bool) "equal shapes compatible" true
    (compatible_shape ManyOne ManyOne);
  Alcotest.(check bool) "transposes are not" false
    (compatible_shape ManyOne OneMany)

let test_card_invalid () =
  Alcotest.check_raises "max < min"
    (Invalid_argument "Cardinality.make: max < min") (fun () ->
      ignore (Cardinality.make 2 (Some 1)))

(* ---- CML ----- *)

let employee_cm =
  Cml.make ~name:"emp"
    ~isas:
      [
        { Cml.sub = "Engineer"; super = "Employee" };
        { Cml.sub = "Programmer"; super = "Employee" };
        { Cml.sub = "Kernel_hacker"; super = "Programmer" };
      ]
    ~disjointness:[ [ "Kernel_hacker"; "Engineer" ] ]
    ~covers:[ ("Employee", [ "Engineer"; "Programmer" ]) ]
    ~binaries:
      [
        Cml.functional "worksIn" ~src:"Employee" ~dst:"Department";
        Cml.many_many "knows" ~src:"Employee" ~dst:"Employee";
      ]
    [
      Cml.cls ~id:[ "ssn" ] "Employee" [ "ssn"; "name" ];
      Cml.cls "Engineer" [ "site" ];
      Cml.cls "Programmer" [ "acnt" ];
      Cml.cls "Kernel_hacker" [];
      Cml.cls ~id:[ "dname" ] "Department" [ "dname" ];
    ]

let test_cml_validation () =
  Alcotest.check_raises "dangling class"
    (Invalid_argument "CM bad: r references unknown class Nope") (fun () ->
      ignore
        (Cml.make ~name:"bad"
           ~binaries:[ Cml.functional "r" ~src:"A" ~dst:"Nope" ]
           [ Cml.cls "A" [] ]));
  Alcotest.check_raises "identifier must be an attribute"
    (Invalid_argument "CM bad: class A identifier x not an attribute")
    (fun () -> ignore (Cml.make ~name:"bad" [ Cml.cls ~id:[ "x" ] "A" [] ]))

let test_cml_hierarchy () =
  Alcotest.(check (list string)) "subclasses" [ "Engineer"; "Programmer" ]
    (Cml.subclasses employee_cm "Employee");
  Alcotest.(check (list string)) "ancestors transitive"
    [ "Programmer"; "Employee" ]
    (Cml.ancestors employee_cm "Kernel_hacker");
  Alcotest.(check bool) "disjoint" true
    (Cml.disjoint employee_cm "Kernel_hacker" "Engineer");
  Alcotest.(check bool) "not disjoint" false
    (Cml.disjoint employee_cm "Engineer" "Programmer");
  Alcotest.(check bool) "self never disjoint" false
    (Cml.disjoint employee_cm "Engineer" "Engineer")

let test_reify_many_many () =
  let r = Cml.reify_many_many employee_cm in
  Alcotest.(check int) "knows got reified" 1 (List.length r.Cml.reified);
  Alcotest.(check int) "worksIn stays binary" 1 (List.length r.Cml.binaries);
  (* idempotent on the rest *)
  let r2 = Cml.reify_many_many r in
  Alcotest.(check int) "idempotent" 1 (List.length r2.Cml.reified)

let test_n_nodes () =
  (* 5 classes + 5 attributes (ssn name site acnt dname) *)
  Alcotest.(check int) "node count" 10 (Cml.n_nodes employee_cm)

(* ---- CM graph ----- *)

let g = Cm_graph.compile employee_cm

let test_graph_structure () =
  let emp = Cm_graph.class_node_exn g "Employee" in
  Alcotest.(check bool) "class-like" true (Cm_graph.is_class_like g emp);
  Alcotest.(check bool) "not reified" false (Cm_graph.is_reified g emp);
  Alcotest.(check (list string)) "identifier" [ "ssn" ]
    (Cm_graph.identifier_attrs g emp);
  Alcotest.(check int) "two attribute edges" 2
    (List.length (Cm_graph.attr_edges g emp));
  Alcotest.(check bool) "attr node exists" true
    (Cm_graph.attr_node g ~owner:"Employee" "name" <> None)

let test_graph_inverses () =
  let graph = Cm_graph.graph g in
  Digraph.fold_edges
    (fun () e ->
      match e.Digraph.lbl.Cm_graph.kind with
      | Cm_graph.HasAttr _ ->
          Alcotest.(check bool) "attr edges have no inverse" true
            (Cm_graph.inverse_edge g e.Digraph.id = None)
      | _ -> (
          match Cm_graph.inverse_edge g e.Digraph.id with
          | None -> Alcotest.fail "connection edge lacks inverse"
          | Some inv ->
              let e' = Digraph.edge graph inv in
              Alcotest.(check int) "inverse flips src" e.Digraph.src e'.Digraph.dst))
    () graph

let find_edge g' ~kind_match =
  let graph = Cm_graph.graph g' in
  match
    List.find_opt (fun (e : _ Digraph.edge) -> kind_match e.Digraph.lbl.Cm_graph.kind)
      (Digraph.edges graph)
  with
  | Some e -> e.Digraph.id
  | None -> Alcotest.fail "edge not found"

let test_path_shape () =
  (* Engineer -isa-> Employee -worksIn->> Department is many-one *)
  let isa_id =
    find_edge g ~kind_match:(function Cm_graph.Isa -> true | _ -> false)
  in
  let isa_edge = Digraph.edge (Cm_graph.graph g) isa_id in
  (* make sure we picked Engineer's isa, any isa works the same *)
  ignore isa_edge;
  let works =
    find_edge g ~kind_match:(function
      | Cm_graph.Rel "worksIn" -> true
      | _ -> false)
  in
  Alcotest.(check bool) "isa.worksIn is many-one" true
    (Cm_graph.path_shape g [ isa_id; works ] = Cardinality.ManyOne);
  let knows =
    find_edge g ~kind_match:(function
      | Cm_graph.Rel "knows" -> true
      | _ -> false)
  in
  Alcotest.(check bool) "knows is many-many" true
    (Cm_graph.path_shape g [ knows ] = Cardinality.ManyMany)

let test_reversals () =
  let works =
    find_edge g ~kind_match:(function
      | Cm_graph.Rel "worksIn" -> true
      | _ -> false)
  in
  let works_inv = Option.get (Cm_graph.inverse_edge g works) in
  Alcotest.(check int) "functional edge: no reversal" 0
    (Cm_graph.reversals g [ works ]);
  Alcotest.(check int) "inverse of functional: one lossy run" 1
    (Cm_graph.reversals g [ works_inv ]);
  Alcotest.(check int) "V-shape counts once per run" 1
    (Cm_graph.reversals g [ works_inv; works ])

let test_consistency () =
  (* Kernel_hacker -isa-> Programmer -isa-> Employee <-isa- Engineer:
     puts Kernel_hacker and Engineer in one identity group: inconsistent. *)
  let graph = Cm_graph.graph g in
  let isa_edges =
    List.filter_map
      (fun (e : _ Digraph.edge) ->
        match e.Digraph.lbl.Cm_graph.kind with
        | Cm_graph.Isa -> Some e.Digraph.id
        | _ -> None)
      (Digraph.edges graph)
  in
  Alcotest.(check bool) "all isa edges together are inconsistent" false
    (Cm_graph.consistent_subgraph g isa_edges);
  (* Engineer + Programmer alone are fine (not declared disjoint). *)
  let eng = Cm_graph.class_node_exn g "Engineer" in
  let prog = Cm_graph.class_node_exn g "Programmer" in
  let ok_edges =
    List.filter
      (fun id ->
        let e = Digraph.edge graph id in
        e.Digraph.src = eng || e.Digraph.src = prog)
      isa_edges
  in
  Alcotest.(check bool) "sibling merge is consistent" true
    (Cm_graph.consistent_subgraph g ok_edges)

let test_steiner_cost_fn () =
  let cost = Cm_graph.steiner_cost g ~pre_selected:(fun _ -> false) () in
  let graph = Cm_graph.graph g in
  let works =
    find_edge g ~kind_match:(function
      | Cm_graph.Rel "worksIn" -> true
      | _ -> false)
  in
  Alcotest.(check (option (float 1e-9))) "functional edge costs 1" (Some 1.)
    (cost (Digraph.edge graph works));
  let knows =
    find_edge g ~kind_match:(function
      | Cm_graph.Rel "knows" -> true
      | _ -> false)
  in
  Alcotest.(check (option (float 1e-9))) "non-functional untraversable" None
    (cost (Digraph.edge graph knows));
  let lossy = Cm_graph.steiner_cost g ~lossy:true ~pre_selected:(fun _ -> false) () in
  (match lossy (Digraph.edge graph knows) with
  | Some c -> Alcotest.(check bool) "lossy penalty dominates" true (c > 5.)
  | None -> Alcotest.fail "lossy edge should be traversable");
  let pre = Cm_graph.steiner_cost g ~pre_selected:(fun id -> id = works) () in
  Alcotest.(check (option (float 1e-9))) "pre-selected is (almost) free"
    (Some 0.001)
    (pre (Digraph.edge graph works))

let test_reified_graph () =
  let cm =
    Cml.make ~name:"sales"
      ~reified:
        [
          Cml.reified ~attrs:[ "date" ] "Sell"
            [
              ("seller", "Store", Cardinality.many);
              ("buyer", "Person", Cardinality.many);
              ("sold", "Product", Cardinality.many);
            ];
        ]
      [
        Cml.cls ~id:[ "sid" ] "Store" [ "sid" ];
        Cml.cls ~id:[ "pid" ] "Person" [ "pid" ];
        Cml.cls ~id:[ "prodid" ] "Product" [ "prodid" ];
      ]
  in
  let g = Cm_graph.compile cm in
  let sell = Cm_graph.class_node_exn g "Sell" in
  Alcotest.(check bool) "reified" true (Cm_graph.is_reified g sell);
  Alcotest.(check (option int)) "arity 3" (Some 3) (Cm_graph.arity g sell);
  Alcotest.(check int) "date attribute attached" 1
    (List.length (Cm_graph.attr_edges g sell))

let suite =
  [
    ( "cm.cardinality",
      [
        Alcotest.test_case "basics" `Quick test_card_basics;
        Alcotest.test_case "compose" `Quick test_card_compose;
        Alcotest.test_case "shape" `Quick test_card_shape;
        Alcotest.test_case "compatible shapes" `Quick test_card_compatible_shape;
        Alcotest.test_case "invalid" `Quick test_card_invalid;
      ] );
    ( "cm.cml",
      [
        Alcotest.test_case "validation" `Quick test_cml_validation;
        Alcotest.test_case "hierarchy" `Quick test_cml_hierarchy;
        Alcotest.test_case "reify many-many" `Quick test_reify_many_many;
        Alcotest.test_case "node count" `Quick test_n_nodes;
      ] );
    ( "cm.graph",
      [
        Alcotest.test_case "structure" `Quick test_graph_structure;
        Alcotest.test_case "inverse pairing" `Quick test_graph_inverses;
        Alcotest.test_case "path shape" `Quick test_path_shape;
        Alcotest.test_case "reversals" `Quick test_reversals;
        Alcotest.test_case "disjointness" `Quick test_consistency;
        Alcotest.test_case "steiner costs" `Quick test_steiner_cost_fn;
        Alcotest.test_case "reified" `Quick test_reified_graph;
      ] );
  ]
