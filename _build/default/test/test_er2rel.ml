(* Tests for er2rel forward engineering and reverse engineering. *)

module Schema = Smg_relational.Schema
module Cml = Smg_cm.Cml
module Cardinality = Smg_cm.Cardinality
module Cm_graph = Smg_cm.Cm_graph
module Stree = Smg_semantics.Stree
module Design = Smg_er2rel.Design
module Reverse = Smg_er2rel.Reverse
module Discover = Smg_core.Discover

let library_cm =
  Cml.make ~name:"library"
    ~binaries:[ Cml.functional "publishedBy" ~src:"Book" ~dst:"Publisher" ]
    ~reified:
      [
        Cml.reified "borrows"
          [
            ("borrower", "Member", Cardinality.many);
            ("item", "Book", Cardinality.many);
          ];
      ]
    ~isas:[ { Cml.sub = "Member"; super = "Person" } ]
    [
      Cml.cls ~id:[ "isbn" ] "Book" [ "isbn"; "title" ];
      Cml.cls ~id:[ "pubname" ] "Publisher" [ "pubname" ];
      Cml.cls ~id:[ "pid" ] "Person" [ "pid"; "name" ];
      Cml.cls "Member" [ "since" ];
    ]

let test_design_tables () =
  let schema, strees = Design.design library_cm in
  let names = List.map (fun (t : Schema.table) -> t.Schema.tbl_name) schema.Schema.tables in
  Alcotest.(check (list string)) "tables"
    [ "book"; "publisher"; "person"; "member"; "borrows" ]
    names;
  Alcotest.(check int) "one s-tree per table" (List.length names)
    (List.length strees)

let test_design_merged_functional () =
  let schema, _ = Design.design library_cm in
  let book = Schema.find_table_exn schema "book" in
  Alcotest.(check (list string)) "FK column for publishedBy"
    [ "isbn"; "title"; "publishedBy_pubname" ]
    (Schema.column_names book);
  Alcotest.(check bool) "ric to publisher" true
    (List.exists
       (fun (r : Schema.ric) ->
         r.Schema.from_table = "book" && r.Schema.to_table = "publisher")
       schema.Schema.rics)

let test_design_relationship_table () =
  let schema, _ = Design.design library_cm in
  let borrows = Schema.find_table_exn schema "borrows" in
  Alcotest.(check (list string)) "participant keys" [ "pid"; "isbn" ]
    (Schema.column_names borrows);
  Alcotest.(check (list string)) "key is the combination" [ "pid"; "isbn" ]
    borrows.Schema.key

let test_design_isa_ric () =
  let schema, _ = Design.design library_cm in
  Alcotest.(check bool) "member references person" true
    (List.exists
       (fun (r : Schema.ric) ->
         r.Schema.from_table = "member" && r.Schema.to_table = "person")
       schema.Schema.rics)

let test_design_strees_validate () =
  (* The generated s-trees pass validation against the CM and schema;
     Discover.side runs that validation for every table. *)
  let schema, strees = Design.design library_cm in
  let (_ : Discover.side) = Discover.side ~schema ~cm:library_cm strees in
  ()

let test_design_table_per_concrete () =
  let config = { Design.default_config with isa = Design.Table_per_concrete } in
  let schema, strees = Design.design ~config library_cm in
  let names = List.map (fun (t : Schema.table) -> t.Schema.tbl_name) schema.Schema.tables in
  Alcotest.(check bool) "person collapsed away" false (List.mem "person" names);
  let member = Schema.find_table_exn schema "member" in
  Alcotest.(check bool) "member inherits name" true
    (Schema.has_column member "name");
  let (_ : Discover.side) = Discover.side ~schema ~cm:library_cm strees in
  ()

let test_design_self_reference () =
  let cm =
    Cml.make ~name:"selfref"
      ~binaries:[ Cml.functional "reportsTo" ~src:"Emp" ~dst:"Emp" ]
      [ Cml.cls ~id:[ "eid" ] "Emp" [ "eid" ] ]
  in
  let schema, strees = Design.design cm in
  let emp = Schema.find_table_exn schema "emp" in
  Alcotest.(check (list string)) "self FK column" [ "eid"; "reportsTo_eid" ]
    (Schema.column_names emp);
  let (_ : Discover.side) = Discover.side ~schema ~cm strees in
  ()

let test_key_of_class () =
  Alcotest.(check (option (pair string (list string)))) "inherited key"
    (Some ("Person", [ "pid" ]))
    (Design.key_of_class library_cm "Member");
  Alcotest.(check (option (pair string (list string)))) "own key"
    (Some ("Book", [ "isbn" ]))
    (Design.key_of_class library_cm "Book")

(* ---- reverse engineering ----- *)

let test_reverse_books () =
  let cm, strees = Reverse.recover Fixtures.Books.source_schema in
  (* writes and soldAt have composite FK keys: reified *)
  Alcotest.(check int) "two reified relationships" 2
    (List.length cm.Cml.reified);
  Alcotest.(check int) "three entity classes" 3 (List.length cm.Cml.classes);
  (* recovered semantics validate *)
  let (_ : Discover.side) =
    Discover.side ~schema:Fixtures.Books.source_schema ~cm strees
  in
  ()

let test_reverse_isa () =
  let schema =
    Schema.make ~name:"iso"
      [
        Schema.table ~key:[ "id" ] "animal" [ ("id", Schema.TString); ("name", Schema.TString) ];
        Schema.table ~key:[ "id" ] "dog" [ ("id", Schema.TString); ("breed", Schema.TString) ];
      ]
      [ Schema.ric ~name:"isa" ~from_:("dog", [ "id" ]) ~to_:("animal", [ "id" ]) ]
  in
  let cm, strees = Reverse.recover schema in
  Alcotest.(check int) "one ISA" 1 (List.length cm.Cml.isas);
  Alcotest.(check bool) "dog < animal" true
    (List.exists (fun i -> i.Cml.sub = "Dog" && i.Cml.super = "Animal") cm.Cml.isas);
  let (_ : Discover.side) = Discover.side ~schema ~cm strees in
  ()

let test_roundtrip_forward_then_reverse () =
  (* er2rel output reverse-engineers into a CM with the same number of
     entity classes (reified relationships may differ in detail). *)
  let schema, _ = Design.design library_cm in
  let cm, strees = Reverse.recover schema in
  Alcotest.(check bool) "recovers at least the concrete classes" true
    (List.length cm.Cml.classes >= 4);
  let (_ : Discover.side) = Discover.side ~schema ~cm strees in
  ()

let suite =
  [
    ( "er2rel.design",
      [
        Alcotest.test_case "tables" `Quick test_design_tables;
        Alcotest.test_case "merged functional rel" `Quick test_design_merged_functional;
        Alcotest.test_case "relationship table" `Quick test_design_relationship_table;
        Alcotest.test_case "ISA ric" `Quick test_design_isa_ric;
        Alcotest.test_case "s-trees validate" `Quick test_design_strees_validate;
        Alcotest.test_case "table per concrete" `Quick test_design_table_per_concrete;
        Alcotest.test_case "self reference" `Quick test_design_self_reference;
        Alcotest.test_case "key resolution" `Quick test_key_of_class;
      ] );
    ( "er2rel.reverse",
      [
        Alcotest.test_case "books" `Quick test_reverse_books;
        Alcotest.test_case "ISA recovery" `Quick test_reverse_isa;
        Alcotest.test_case "forward ∘ reverse" `Quick test_roundtrip_forward_then_reverse;
      ] );
  ]
