(* Tests for the RIC-based baseline (Clio-style logical relations). *)

module Schema = Smg_relational.Schema
module Atom = Smg_cq.Atom
module Mapping = Smg_cq.Mapping
module Baseline = Smg_ric.Baseline

let books = Fixtures.Books.source_schema

let lr_for root =
  List.find
    (fun lr -> lr.Baseline.lr_root = root)
    (Baseline.logical_relations books)

let tables lr =
  List.sort_uniq compare
    (List.map (fun (a : Atom.t) -> a.Atom.pred) lr.Baseline.lr_atoms)

let test_logical_relations_books () =
  (* chasing writes pulls in person and book (S1 of the paper) *)
  Alcotest.(check (list string)) "S1" [ "book"; "person"; "writes" ]
    (tables (lr_for "writes"));
  Alcotest.(check (list string)) "S2" [ "book"; "bookstore"; "soldAt" ]
    (tables (lr_for "soldAt"));
  Alcotest.(check (list string)) "entity tables chase to themselves"
    [ "person" ]
    (tables (lr_for "person"))

let test_chase_shares_variables () =
  let lr = lr_for "writes" in
  let writes =
    List.find (fun (a : Atom.t) -> a.Atom.pred = "writes") lr.Baseline.lr_atoms
  in
  let person =
    List.find (fun (a : Atom.t) -> a.Atom.pred = "person") lr.Baseline.lr_atoms
  in
  Alcotest.(check bool) "writes.pname = person.pname" true
    (Atom.equal_term (List.hd writes.Atom.args) (List.hd person.Atom.args))

let test_cyclic_rics_terminate () =
  let schema =
    Schema.make ~name:"cyc"
      [
        Schema.table ~key:[ "a" ] "t1" [ ("a", Schema.TString); ("b", Schema.TString) ];
        Schema.table ~key:[ "b" ] "t2" [ ("b", Schema.TString); ("a", Schema.TString) ];
      ]
      [
        Schema.ric ~name:"r1" ~from_:("t1", [ "b" ]) ~to_:("t2", [ "b" ]);
        Schema.ric ~name:"r2" ~from_:("t2", [ "a" ]) ~to_:("t1", [ "a" ]);
      ]
  in
  let lrs = Baseline.logical_relations schema in
  Alcotest.(check int) "one LR per table" 2 (List.length lrs);
  List.iter
    (fun lr ->
      Alcotest.(check bool) "bounded size" true
        (List.length lr.Baseline.lr_atoms <= 24))
    lrs

let test_generate_books () =
  let ms =
    Baseline.generate ~source:books ~target:Fixtures.Books.target_schema
      ~corrs:Fixtures.Books.corrs
  in
  Alcotest.(check bool) "baseline produces candidates" true (List.length ms >= 2);
  (* The M5 composition is out of reach for the baseline. *)
  let m5 =
    List.exists
      (fun m ->
        let ts = Fixtures.src_tables m in
        List.mem "person" ts && List.mem "bookstore" ts)
      ms
  in
  Alcotest.(check bool) "no author-bookstore pairing" false m5;
  (* every candidate covers at least one correspondence *)
  List.iter
    (fun m ->
      Alcotest.(check bool) "covers something" true (m.Mapping.covered <> []))
    ms

let test_join_pruning () =
  (* With only the person.pname correspondence, the writes logical
     relation prunes down to just person — so the (writes → target)
     candidate collapses into the trivial (person → target) one. *)
  let ms =
    Baseline.generate ~source:books ~target:Fixtures.Books.target_schema
      ~corrs:[ Mapping.corr_of_strings "person.pname" "hasBookSoldAt.aname" ]
  in
  List.iter
    (fun m ->
      Alcotest.(check (list string)) "only person remains" [ "person" ]
        (Fixtures.src_tables m))
    ms;
  Alcotest.(check int) "single deduplicated candidate" 1 (List.length ms)

let test_isa_case_baseline_splits () =
  (* Example 1.2: the baseline maps programmer and engineer separately
     and never joins them (no RIC connects them). *)
  let ms =
    Baseline.generate ~source:Fixtures.Employees.source_schema
      ~target:Fixtures.Employees.target_schema ~corrs:Fixtures.Employees.corrs
  in
  Alcotest.(check bool) "no programmer ⋈ engineer" false
    (List.exists
       (fun m ->
         let ts = Fixtures.src_tables m in
         List.mem "programmer" ts && List.mem "engineer" ts)
       ms)

let suite =
  [
    ( "ric.baseline",
      [
        Alcotest.test_case "logical relations (books)" `Quick test_logical_relations_books;
        Alcotest.test_case "chase shares variables" `Quick test_chase_shares_variables;
        Alcotest.test_case "cyclic RICs terminate" `Quick test_cyclic_rics_terminate;
        Alcotest.test_case "mapping generation (books)" `Quick test_generate_books;
        Alcotest.test_case "join pruning heuristic" `Quick test_join_pruning;
        Alcotest.test_case "ISA case splits" `Quick test_isa_case_baseline_splits;
      ] );
  ]
