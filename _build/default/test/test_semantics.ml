(* Tests for Smg_semantics: s-tree validation, LAV encoding, CSG
   encoding, and the §3.4 rewriting. *)

module Schema = Smg_relational.Schema
module Cml = Smg_cm.Cml
module Cm_graph = Smg_cm.Cm_graph
module Stree = Smg_semantics.Stree
module Encode = Smg_semantics.Encode
module Rewrite = Smg_semantics.Rewrite
module Atom = Smg_cq.Atom
module Query = Smg_cq.Query

let n = Stree.nref
let books_g = lazy (Cm_graph.compile Fixtures.Books.source_cm)

(* ---- validation ----- *)

let test_validate_ok () =
  let g = Lazy.force books_g in
  List.iter
    (fun (st : Stree.t) ->
      let t = Schema.find_table_exn Fixtures.Books.source_schema st.Stree.st_table in
      Stree.validate g t st)
    Fixtures.Books.source_strees

let test_validate_rejects_unmapped_column () =
  let g = Lazy.force books_g in
  let t = Schema.find_table_exn Fixtures.Books.source_schema "person" in
  let bad = Stree.make ~table:"person" [ n "Person" ] in
  Alcotest.check_raises "unmapped column"
    (Invalid_argument "s-tree of person: column pname unmapped") (fun () ->
      Stree.validate g t bad)

let test_validate_rejects_non_tree () =
  let g = Lazy.force books_g in
  let t = Schema.find_table_exn Fixtures.Books.source_schema "person" in
  let bad =
    Stree.make ~table:"person"
      ~cols:[ ("pname", n "Person", "pname") ]
      [ n "Person"; n "Book" ]
  in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "s-tree of person: not a tree: 2 nodes, 0 edges")
    (fun () -> Stree.validate g t bad)

let test_validate_rejects_wrong_edge () =
  let g = Lazy.force books_g in
  let t = Schema.find_table_exn Fixtures.Books.source_schema "writes" in
  let bad =
    Stree.make ~table:"writes"
      ~edges:[ { Stree.se_src = n "writes"; se_kind = Stree.SRole "nope"; se_dst = n "Person" } ]
      ~cols:[ ("pname", n "Person", "pname"); ("bid", n "Person", "pname") ]
      [ n "writes"; n "Person" ]
  in
  Alcotest.check_raises "unknown role"
    (Invalid_argument "s-tree of writes: reified writes has no role nope")
    (fun () -> Stree.validate g t bad)

let test_declaring_class () =
  let cm = Fixtures.Employees.cm in
  Alcotest.(check (option string)) "inherited attribute" (Some "Employee")
    (Stree.declaring_class cm "Programmer" "name");
  Alcotest.(check (option string)) "own attribute" (Some "Programmer")
    (Stree.declaring_class cm "Programmer" "acnt");
  Alcotest.(check (option string)) "missing" None
    (Stree.declaring_class cm "Programmer" "site")

let test_graph_edges_projection () =
  let g = Lazy.force books_g in
  let writes_st =
    List.find (fun st -> st.Stree.st_table = "writes") Fixtures.Books.source_strees
  in
  Alcotest.(check int) "two forward edges" 2
    (List.length (Stree.forward_graph_edges g writes_st));
  Alcotest.(check int) "four with inverses" 4
    (List.length (Stree.graph_edge_ids g writes_st))

(* ---- encoding ----- *)

let test_view_encoding () =
  let g = Lazy.force books_g in
  let writes_st =
    List.find (fun st -> st.Stree.st_table = "writes") Fixtures.Books.source_strees
  in
  let view = Encode.view_of_stree g writes_st in
  Alcotest.(check int) "head = columns" 2 (List.length view.Query.head);
  (* 3 class atoms + 2 role atoms + 2 attribute atoms *)
  Alcotest.(check int) "body size" 7 (List.length view.Query.body);
  Alcotest.(check bool) "mentions the role predicate" true
    (List.exists
       (fun (a : Atom.t) -> a.Atom.pred = Encode.role_pred ~rr:"writes" "writes_author")
       view.Query.body)

let test_view_encoding_isa_unifies () =
  let g = Cm_graph.compile Fixtures.Employees.cm in
  let st = List.hd Fixtures.Employees.source_strees in
  let view = Encode.view_of_stree g st in
  (* Programmer(x) and Employee(x) must share a variable *)
  let var_of_cls c =
    List.find_map
      (fun (a : Atom.t) ->
        if a.Atom.pred = Encode.cls_pred c then Some a.Atom.args else None)
      view.Query.body
  in
  Alcotest.(check bool) "same object variable" true
    (var_of_cls "Programmer" = var_of_cls "Employee")

let test_parse_pred_roundtrip () =
  Alcotest.(check bool) "cls" true
    (Encode.parse_pred (Encode.cls_pred "Person") = Some (Encode.PCls "Person"));
  Alcotest.(check bool) "rel" true
    (Encode.parse_pred (Encode.rel_pred "writes") = Some (Encode.PRel "writes"));
  Alcotest.(check bool) "role" true
    (Encode.parse_pred (Encode.role_pred ~rr:"Sell" "buyer")
    = Some (Encode.PRole ("Sell", "buyer")));
  Alcotest.(check bool) "attr" true
    (Encode.parse_pred (Encode.attr_pred ~owner:"Person" "pname")
    = Some (Encode.PAttr ("Person", "pname")));
  Alcotest.(check bool) "table predicates do not parse" true
    (Encode.parse_pred "person" = None)

let test_csg_encoding () =
  let g = Lazy.force books_g in
  let person = Cm_graph.class_node_exn g "Person" in
  let csg =
    {
      Encode.csg_nodes = [ person ];
      csg_edges = [];
      csg_outputs = [ (person, "pname", "v0") ];
      csg_anchor = None;
    }
  in
  let q = Encode.query_of_csg g csg in
  Alcotest.(check int) "class + attribute atom" 2 (List.length q.Query.body);
  Alcotest.(check int) "one answer" 1 (List.length q.Query.head)

(* ---- rewriting ----- *)

let books_rewrite ?required_tables csg =
  let g = Lazy.force books_g in
  let q = Encode.query_of_csg g csg in
  Rewrite.rewrite ~cmg:g ~schema:Fixtures.Books.source_schema
    ~strees:Fixtures.Books.source_strees ?required_tables q

let test_rewrite_single_class () =
  let g = Lazy.force books_g in
  let person = Cm_graph.class_node_exn g "Person" in
  let rws =
    books_rewrite
      {
        Encode.csg_nodes = [ person ];
        csg_edges = [];
        csg_outputs = [ (person, "pname", "v0") ];
        csg_anchor = None;
      }
  in
  (* maximal rewritings: person table alone, or via writes (contained in
     person? no: writes ⊆ person by the RIC but not as CQs) *)
  Alcotest.(check bool) "some rewriting mentions person" true
    (List.exists (fun r -> List.mem "person" r.Rewrite.rw_tables) rws);
  List.iter
    (fun r ->
      let q = r.Rewrite.rw_query in
      let head_vars = Query.head_vars q in
      let body_vars = Query.body_vars q in
      Alcotest.(check bool) "head safe" true
        (List.for_all (fun v -> List.mem v body_vars) head_vars))
    rws

let test_rewrite_composition_m5 () =
  (* The Example 3.3/3.4 query: Person —writes— Book —soldAt— Bookstore. *)
  let g = Lazy.force books_g in
  let node = Cm_graph.class_node_exn g in
  let graph = Cm_graph.graph g in
  let edges =
    List.filter_map
      (fun (e : _ Smg_graph.Digraph.edge) ->
        match e.Smg_graph.Digraph.lbl.Cm_graph.kind with
        | Cm_graph.Role _ -> Some e.Smg_graph.Digraph.id
        | _ -> None)
      (Smg_graph.Digraph.edges graph)
  in
  let rws =
    books_rewrite ~required_tables:[ "person"; "bookstore" ]
      {
        Encode.csg_nodes =
          [ node "Person"; node "writes"; node "Book"; node "soldAt"; node "Bookstore" ];
        csg_edges = edges;
        csg_outputs =
          [ (node "Person", "pname", "v0"); (node "Bookstore", "sid", "v1") ];
        csg_anchor = None;
      }
  in
  (* the q'_3 shape must be among the maximal rewritings *)
  let has_q3 =
    List.exists
      (fun r ->
        let tables = r.Rewrite.rw_tables in
        List.mem "person" tables && List.mem "writes" tables
        && List.mem "soldAt" tables && List.mem "bookstore" tables
        && not (List.mem "book" tables))
      rws
  in
  Alcotest.(check bool) "q'_3 found (book eliminated as contained)" true has_q3;
  (* and the q'_2 variant (with the book table) must have been pruned *)
  let has_q2 =
    List.exists (fun r -> List.mem "book" r.Rewrite.rw_tables) rws
  in
  Alcotest.(check bool) "q'_2 pruned" false has_q2

let test_rewrite_unconstrained_prefers_q1 () =
  (* Without the correspondence-table requirement the maximal rewriting
     is q'_1 (writes ⋈ soldAt), which subsumes q'_3. *)
  let g = Lazy.force books_g in
  let node = Cm_graph.class_node_exn g in
  let graph = Cm_graph.graph g in
  let edges =
    List.filter_map
      (fun (e : _ Smg_graph.Digraph.edge) ->
        match e.Smg_graph.Digraph.lbl.Cm_graph.kind with
        | Cm_graph.Role _ -> Some e.Smg_graph.Digraph.id
        | _ -> None)
      (Smg_graph.Digraph.edges graph)
  in
  let rws =
    books_rewrite
      {
        Encode.csg_nodes =
          [ node "Person"; node "writes"; node "Book"; node "soldAt"; node "Bookstore" ];
        csg_edges = edges;
        csg_outputs =
          [ (node "Person", "pname", "v0"); (node "Bookstore", "sid", "v1") ];
        csg_anchor = None;
      }
  in
  Alcotest.(check bool) "q'_1 among results" true
    (List.exists
       (fun r -> r.Rewrite.rw_tables = [ "soldAt"; "writes" ])
       rws)

let test_rewrite_isa_join_on_keys () =
  (* Employee attributes drawn from both programmer and engineer join on
     ssn (Example 1.2's source side). *)
  let g = Cm_graph.compile Fixtures.Employees.cm in
  let emp = Cm_graph.class_node_exn g "Employee" in
  let prog = Cm_graph.class_node_exn g "Programmer" in
  let eng = Cm_graph.class_node_exn g "Engineer" in
  let graph = Cm_graph.graph g in
  let isa_edges =
    List.filter_map
      (fun (e : _ Smg_graph.Digraph.edge) ->
        match e.Smg_graph.Digraph.lbl.Cm_graph.kind with
        | Cm_graph.Isa -> Some e.Smg_graph.Digraph.id
        | _ -> None)
      (Smg_graph.Digraph.edges graph)
  in
  let q =
    Encode.query_of_csg g
      {
        Encode.csg_nodes = [ emp; prog; eng ];
        csg_edges = isa_edges;
        csg_outputs = [ (prog, "acnt", "v0"); (eng, "site", "v1") ];
        csg_anchor = Some emp;
      }
  in
  let rws =
    Rewrite.rewrite ~cmg:g ~schema:Fixtures.Employees.source_schema
      ~strees:Fixtures.Employees.source_strees q
  in
  let joined =
    List.find_opt
      (fun r ->
        List.mem "programmer" r.Rewrite.rw_tables
        && List.mem "engineer" r.Rewrite.rw_tables)
      rws
  in
  match joined with
  | None -> Alcotest.fail "expected a programmer ⋈ engineer rewriting"
  | Some r ->
      (* the two atoms must share the ssn variable (position 0 of both) *)
      let q = r.Rewrite.rw_query in
      let arg0 (a : Atom.t) = List.hd a.Atom.args in
      let atoms = q.Query.body in
      let p = List.find (fun (a : Atom.t) -> a.Atom.pred = "programmer") atoms in
      let e = List.find (fun (a : Atom.t) -> a.Atom.pred = "engineer") atoms in
      Alcotest.(check bool) "joined on ssn" true
        (Atom.equal_term (arg0 p) (arg0 e))

let test_rewrite_respects_max_covers () =
  let g = Lazy.force books_g in
  let person = Cm_graph.class_node_exn g "Person" in
  let rws =
    let q =
      Encode.query_of_csg g
        {
          Encode.csg_nodes = [ person ];
          csg_edges = [];
          csg_outputs = [ (person, "pname", "v0") ];
          csg_anchor = None;
        }
    in
    Rewrite.rewrite ~cmg:g ~schema:Fixtures.Books.source_schema
      ~strees:Fixtures.Books.source_strees ~max_covers:1 q
  in
  Alcotest.(check bool) "bounded enumeration still yields something" true
    (List.length rws >= 1)

let suite =
  [
    ( "semantics.stree",
      [
        Alcotest.test_case "validate fixtures" `Quick test_validate_ok;
        Alcotest.test_case "reject unmapped column" `Quick test_validate_rejects_unmapped_column;
        Alcotest.test_case "reject non-tree" `Quick test_validate_rejects_non_tree;
        Alcotest.test_case "reject bad edge" `Quick test_validate_rejects_wrong_edge;
        Alcotest.test_case "declaring class" `Quick test_declaring_class;
        Alcotest.test_case "graph edge projection" `Quick test_graph_edges_projection;
      ] );
    ( "semantics.encode",
      [
        Alcotest.test_case "view of s-tree" `Quick test_view_encoding;
        Alcotest.test_case "ISA unifies variables" `Quick test_view_encoding_isa_unifies;
        Alcotest.test_case "predicate naming roundtrip" `Quick test_parse_pred_roundtrip;
        Alcotest.test_case "CSG encoding" `Quick test_csg_encoding;
      ] );
    ( "semantics.rewrite",
      [
        Alcotest.test_case "single class" `Quick test_rewrite_single_class;
        Alcotest.test_case "M5 composition (q'_3)" `Quick test_rewrite_composition_m5;
        Alcotest.test_case "unconstrained keeps q'_1" `Quick
          test_rewrite_unconstrained_prefers_q1;
        Alcotest.test_case "ISA key join" `Quick test_rewrite_isa_join_on_keys;
        Alcotest.test_case "bounded covers" `Quick test_rewrite_respects_max_covers;
      ] );
  ]
