(* Tests for the name-based schema matcher. *)

module Matcher = Smg_matching.Matcher
module Mapping = Smg_cq.Mapping

let test_levenshtein () =
  Alcotest.(check int) "identity" 0 (Matcher.levenshtein "abc" "abc");
  Alcotest.(check int) "one substitution" 1 (Matcher.levenshtein "abc" "abd");
  Alcotest.(check int) "insertion" 1 (Matcher.levenshtein "abc" "abcd");
  Alcotest.(check int) "empty" 3 (Matcher.levenshtein "" "abc");
  Alcotest.(check int) "kitten/sitting" 3 (Matcher.levenshtein "kitten" "sitting")

let test_tokens () =
  Alcotest.(check (list string)) "snake case" [ "city"; "name" ]
    (Matcher.tokens "city_name");
  Alcotest.(check (list string)) "camel case" [ "city"; "name" ]
    (Matcher.tokens "cityName");
  Alcotest.(check (list string)) "dots" [ "a"; "b" ] (Matcher.tokens "a.b");
  Alcotest.(check (list string)) "single" [ "pname" ] (Matcher.tokens "pname")

let test_similarity () =
  Alcotest.(check (float 1e-9)) "identical" 1. (Matcher.similarity "name" "name");
  Alcotest.(check (float 1e-9)) "case/format insensitive" 1.
    (Matcher.similarity "cityName" "city_name");
  Alcotest.(check bool) "related > unrelated" true
    (Matcher.similarity "cityname" "city_name"
    > Matcher.similarity "cityname" "population")

let test_propose_books () =
  let results =
    Matcher.propose ~source:Fixtures.Books.source_schema
      ~target:Fixtures.Books.target_schema ()
  in
  (* target sid should match a source sid column with high confidence *)
  let sid =
    List.find_opt
      (fun (r : Matcher.match_result) ->
        snd r.corr.Mapping.c_tgt = "sid" && snd r.corr.Mapping.c_src = "sid")
      results
  in
  Alcotest.(check bool) "sid matched" true (Option.is_some sid);
  (match sid with
  | Some r -> Alcotest.(check bool) "high confidence" true (r.confidence > 0.8)
  | None -> ());
  (* results sorted by decreasing confidence *)
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        (a : Matcher.match_result).confidence >= b.confidence && sorted rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sorted" true (sorted results)

let test_propose_threshold () =
  let all =
    Matcher.propose ~threshold:0. ~source:Fixtures.Books.source_schema
      ~target:Fixtures.Books.target_schema ()
  in
  let strict =
    Matcher.propose ~threshold:0.99 ~source:Fixtures.Books.source_schema
      ~target:Fixtures.Books.target_schema ()
  in
  Alcotest.(check bool) "threshold prunes" true
    (List.length strict <= List.length all);
  List.iter
    (fun (r : Matcher.match_result) ->
      Alcotest.(check bool) "above threshold" true (r.confidence >= 0.99))
    strict

let suite =
  [
    ( "matching",
      [
        Alcotest.test_case "levenshtein" `Quick test_levenshtein;
        Alcotest.test_case "tokenisation" `Quick test_tokens;
        Alcotest.test_case "similarity" `Quick test_similarity;
        Alcotest.test_case "propose on books" `Quick test_propose_books;
        Alcotest.test_case "threshold" `Quick test_propose_threshold;
      ] );
  ]
