(* Tests for the SQL renderings: DDL, SELECT-of-query, INSERT-of-mapping,
   and the DOT export of CM graphs. *)

module Schema = Smg_relational.Schema
module Value = Smg_relational.Value
module Sql_ddl = Smg_relational.Sql_ddl
module Sql = Smg_cq.Sql
module Atom = Smg_cq.Atom
module Query = Smg_cq.Query
module Mapping = Smg_cq.Mapping
module Dot = Smg_cm.Dot
module Cm_graph = Smg_cm.Cm_graph

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ---- DDL ----- *)

let test_create_table () =
  let s = Fixtures.Books.source_schema in
  let t = Schema.find_table_exn s "writes" in
  let ddl = Sql_ddl.create_table s t in
  Alcotest.(check bool) "create" true (contains ~needle:"CREATE TABLE writes" ddl);
  Alcotest.(check bool) "pk" true
    (contains ~needle:"PRIMARY KEY (pname, bid)" ddl);
  Alcotest.(check bool) "fk to person" true
    (contains ~needle:"FOREIGN KEY (pname) REFERENCES person (pname)" ddl)

let test_create_schema_order () =
  let ddl = Sql_ddl.create_schema Fixtures.Books.source_schema in
  (* referenced tables must be created before referencing ones *)
  let pos needle =
    let rec go i =
      if i >= String.length ddl then -1
      else if contains ~needle (String.sub ddl i (String.length needle)) then i
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "person before writes" true
    (pos "CREATE TABLE person" < pos "CREATE TABLE writes");
  Alcotest.(check bool) "book before soldAt" true
    (pos "CREATE TABLE book" < pos "CREATE TABLE soldAt")

let test_insert_tuple () =
  let s = Fixtures.Books.source_schema in
  let t = Schema.find_table_exn s "writes" in
  let sql =
    Sql_ddl.insert_tuple t [| Value.VString "o'neil"; Value.VNull 3 |]
  in
  Alcotest.(check string) "escaped + null"
    "INSERT INTO writes (pname, bid) VALUES ('o''neil', NULL);" sql

(* ---- SELECT of a query ----- *)

let test_select_of_query () =
  let q =
    Query.make
      ~head:[ Atom.v "p"; Atom.v "s" ]
      [
        Atom.atom "writes" [ Atom.v "p"; Atom.v "b" ];
        Atom.atom "soldAt" [ Atom.v "b"; Atom.v "s" ];
      ]
  in
  let sql = Sql.select_of_query Fixtures.Books.source_schema q in
  Alcotest.(check bool) "select head" true
    (contains ~needle:"SELECT DISTINCT a0.pname AS v0, a1.sid AS v1" sql);
  Alcotest.(check bool) "join condition" true
    (contains ~needle:"a0.bid = a1.bid" sql)

let test_select_with_constant () =
  let q =
    Query.make ~head:[ Atom.v "b" ]
      [ Atom.atom "writes" [ Atom.str "knuth"; Atom.v "b" ] ]
  in
  let sql = Sql.select_of_query Fixtures.Books.source_schema q in
  Alcotest.(check bool) "constant filter" true
    (contains ~needle:"a0.pname = 'knuth'" sql)

let test_select_unsafe_head_rejected () =
  let q = Query.make ~head:[ Atom.v "zzz" ] [ Atom.atom "person" [ Atom.v "p" ] ] in
  Alcotest.check_raises "unsafe"
    (Invalid_argument "sql: unsafe head variable zzz") (fun () ->
      ignore (Sql.select_of_query Fixtures.Books.source_schema q))

(* ---- INSERT of a mapping ----- *)

let test_insert_of_mapping () =
  let m =
    Mapping.make
      ~src_query:
        (Query.make ~head:[ Atom.v "p" ] [ Atom.atom "person" [ Atom.v "p" ] ])
      ~tgt_query:
        (Query.make ~head:[ Atom.v "a" ]
           [ Atom.atom "hasBookSoldAt" [ Atom.v "a"; Atom.v "s" ] ])
      ~covered:[ Mapping.corr_of_strings "person.pname" "hasBookSoldAt.aname" ]
      ()
  in
  match
    Sql.insert_of_mapping ~source:Fixtures.Books.source_schema
      ~target:Fixtures.Books.target_schema m
  with
  | [ sql ] ->
      Alcotest.(check bool) "insert target" true
        (contains ~needle:"INSERT INTO hasBookSoldAt (aname, sid)" sql);
      Alcotest.(check bool) "universal column" true
        (contains ~needle:"a0.pname AS aname" sql);
      Alcotest.(check bool) "existential column is NULL" true
        (contains ~needle:"NULL AS sid" sql)
  | other -> Alcotest.failf "expected one statement, got %d" (List.length other)

let test_insert_of_discovered_m5 () =
  let ms =
    Smg_core.Discover.discover ~source:(Fixtures.Books.source ())
      ~target:(Fixtures.Books.target ()) ~corrs:Fixtures.Books.corrs ()
  in
  let stmts =
    Sql.insert_of_mapping ~source:Fixtures.Books.source_schema
      ~target:Fixtures.Books.target_schema (List.hd ms)
  in
  Alcotest.(check int) "one insert" 1 (List.length stmts);
  Alcotest.(check bool) "no NULLs needed: M5 is full" false
    (contains ~needle:"NULL AS" (List.hd stmts))

(* ---- DOT export ----- *)

let test_dot_export () =
  let g = Cm_graph.compile Fixtures.Books.source_cm in
  let dot = Dot.of_cm_graph ~name:"books" g in
  Alcotest.(check bool) "digraph header" true
    (contains ~needle:"digraph \"books\"" dot);
  Alcotest.(check bool) "reified diamond" true
    (contains ~needle:"shape=diamond" dot);
  Alcotest.(check bool) "class box" true
    (contains ~needle:"label=\"Person\", shape=box" dot);
  (* balanced braces *)
  Alcotest.(check bool) "closed" true (contains ~needle:"}" dot)

let test_dot_highlight () =
  let g = Cm_graph.compile Fixtures.Books.source_cm in
  let person = Cm_graph.class_node_exn g "Person" in
  let dot = Dot.of_cm_graph ~highlight_nodes:[ person ] ~attributes:false g in
  Alcotest.(check bool) "highlighted" true (contains ~needle:"color=red" dot);
  Alcotest.(check bool) "attributes suppressed" false
    (contains ~needle:"shape=oval" dot)

let suite =
  [
    ( "sql.ddl",
      [
        Alcotest.test_case "create table" `Quick test_create_table;
        Alcotest.test_case "dependency order" `Quick test_create_schema_order;
        Alcotest.test_case "insert tuple" `Quick test_insert_tuple;
      ] );
    ( "sql.query",
      [
        Alcotest.test_case "select" `Quick test_select_of_query;
        Alcotest.test_case "constants" `Quick test_select_with_constant;
        Alcotest.test_case "unsafe head" `Quick test_select_unsafe_head_rejected;
        Alcotest.test_case "insert of mapping" `Quick test_insert_of_mapping;
        Alcotest.test_case "insert of discovered M5" `Quick
          test_insert_of_discovered_m5;
      ] );
    ( "cm.dot",
      [
        Alcotest.test_case "export" `Quick test_dot_export;
        Alcotest.test_case "highlighting" `Quick test_dot_highlight;
      ] );
  ]
