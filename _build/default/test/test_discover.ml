(* Integration tests for the semantic discovery algorithm: the paper's
   Examples 1.1, 1.2, 3.1 end to end. *)

module Mapping = Smg_cq.Mapping
module Query = Smg_cq.Query
module Atom = Smg_cq.Atom
module Discover = Smg_core.Discover

let discover_books () =
  Discover.discover ~source:(Fixtures.Books.source ())
    ~target:(Fixtures.Books.target ()) ~corrs:Fixtures.Books.corrs ()

let test_books_m5 () =
  let ms = discover_books () in
  Alcotest.(check bool) "candidates produced" true (ms <> []);
  let best = List.hd ms in
  Alcotest.(check (list string)) "M5 source tables"
    [ "bookstore"; "person"; "soldAt"; "writes" ]
    (Fixtures.src_tables best);
  Alcotest.(check (list string)) "target side" [ "hasBookSoldAt" ]
    (Fixtures.tgt_tables best);
  Alcotest.(check int) "covers both correspondences" 2
    (List.length best.Mapping.covered)

let test_books_m5_head_safety () =
  List.iter
    (fun (m : Mapping.t) ->
      let safe (q : Query.t) =
        let bv = Query.body_vars q in
        List.for_all (fun v -> List.mem v bv) (Query.head_vars q)
      in
      Alcotest.(check bool) "src head safe" true (safe m.Mapping.src_query);
      Alcotest.(check bool) "tgt head safe" true (safe m.Mapping.tgt_query))
    (discover_books ())

let test_books_tgd_executes () =
  (* Run the discovered mapping as data exchange on a small instance. *)
  let module I = Smg_relational.Instance in
  let vs s = Smg_relational.Value.VString s in
  let src_inst =
    I.empty
    |> fun i -> I.add_tuple i "person" ~header:[ "pname" ] [| vs "knuth" |]
    |> fun i ->
    I.add_tuple i "writes" ~header:[ "pname"; "bid" ] [| vs "knuth"; vs "taocp" |]
    |> fun i -> I.add_tuple i "book" ~header:[ "bid" ] [| vs "taocp" |]
    |> fun i ->
    I.add_tuple i "soldAt" ~header:[ "bid"; "sid" ] [| vs "taocp"; vs "store1" |]
    |> fun i -> I.add_tuple i "bookstore" ~header:[ "sid" ] [| vs "store1" |]
  in
  let m = List.hd (discover_books ()) in
  match
    Smg_cq.Chase.exchange ~source:Fixtures.Books.source_schema
      ~target:Fixtures.Books.target_schema
      ~mappings:[ Mapping.to_tgd m ]
      src_inst
  with
  | Smg_cq.Chase.Saturated out ->
      Alcotest.(check int) "one exchanged tuple" 1
        (I.cardinality out "hasBookSoldAt");
      let t = List.hd (Option.get (I.relation out "hasBookSoldAt")).I.tuples in
      Alcotest.(check bool) "knuth at store1" true
        (Smg_relational.Value.equal t.(0) (vs "knuth")
        && Smg_relational.Value.equal t.(1) (vs "store1"))
  | _ -> Alcotest.fail "exchange did not saturate"

let test_employees_isa_merge () =
  (* Example 1.2: the semantic method merges programmer and engineer. *)
  let ms =
    Discover.discover ~source:(Fixtures.Employees.source ())
      ~target:(Fixtures.Employees.target ()) ~corrs:Fixtures.Employees.corrs ()
  in
  Alcotest.(check bool) "candidates produced" true (ms <> []);
  let best = List.hd ms in
  Alcotest.(check (list string)) "joins both subclass tables"
    [ "engineer"; "programmer" ]
    (Fixtures.src_tables best);
  Alcotest.(check bool) "outer-join recommended" true best.Mapping.outer;
  Alcotest.(check int) "covers all three correspondences" 3
    (List.length best.Mapping.covered)

let test_projects_case_a1 () =
  (* Example 3.1: anchored functional tree rooted at Project. *)
  let ms =
    Discover.discover ~source:(Fixtures.Projects.source ())
      ~target:(Fixtures.Projects.target ()) ~corrs:Fixtures.Projects.corrs ()
  in
  Alcotest.(check bool) "candidates produced" true (ms <> []);
  let best = List.hd ms in
  Alcotest.(check (list string)) "control ⋈ manage" [ "control"; "manage" ]
    (Fixtures.src_tables best);
  Alcotest.(check int) "all three correspondences" 3
    (List.length best.Mapping.covered)

let test_projects_case_a2 () =
  (* Drop the root correspondence (v1): Case A.2 still finds the same
     minimal functional tree. *)
  let corrs =
    [
      Mapping.corr_of_strings "control.dept" "proj.dept";
      Mapping.corr_of_strings "manage.mgr" "proj.emp";
    ]
  in
  let ms =
    Discover.discover ~source:(Fixtures.Projects.source ())
      ~target:(Fixtures.Projects.target ()) ~corrs ()
  in
  Alcotest.(check bool) "candidates produced" true (ms <> []);
  let best = List.hd ms in
  (* dept values flow from control (it carries a correspondence), so the
     translated expression joins both tables *)
  Alcotest.(check (list string)) "control ⋈ manage"
    [ "control"; "manage" ]
    (Fixtures.src_tables best)

let test_single_correspondence_trivial () =
  let ms =
    Discover.discover ~source:(Fixtures.Books.source ())
      ~target:(Fixtures.Books.target ())
      ~corrs:[ Mapping.corr_of_strings "person.pname" "hasBookSoldAt.aname" ]
      ()
  in
  Alcotest.(check bool) "trivial mapping found" true
    (List.exists
       (fun m -> Fixtures.src_tables m = [ "person" ])
       ms)

let test_no_correspondences () =
  let ms =
    Discover.discover ~source:(Fixtures.Books.source ())
      ~target:(Fixtures.Books.target ()) ~corrs:[] ()
  in
  Alcotest.(check int) "no candidates" 0 (List.length ms)

let test_candidates_deduplicated () =
  let ms = discover_books () in
  let rec pairs = function
    | [] -> ()
    | m :: rest ->
        List.iter
          (fun m' ->
            Alcotest.(check bool) "no duplicate candidates" false
              (Mapping.same m m'))
          rest;
        pairs rest
  in
  pairs ms

let test_outer_on_optional_hint () =
  (* §6 future work: an optional (min-cardinality-0) edge in the source
     connection hints at an outer join. The capital relationship of the
     books source is total, so use projects where controlledBy is total
     but hasManager is total too — instead check against a variant CM
     where hasManager is optional. *)
  let corrs = Fixtures.Projects.corrs in
  let options =
    { Discover.default_options with outer_on_optional = true }
  in
  let ms =
    Discover.discover ~options ~source:(Fixtures.Projects.source ())
      ~target:(Fixtures.Projects.target ()) ~corrs ()
  in
  (* controlledBy and hasManager are both declared total (1..1) in the
     fixture, so no hint fires... *)
  Alcotest.(check bool) "total edges: no outer hint" true
    (List.for_all (fun m -> not m.Mapping.outer) ms);
  (* ...but the books composition traverses optional role inverses *)
  let ms =
    Discover.discover ~options ~source:(Fixtures.Books.source ())
      ~target:(Fixtures.Books.target ()) ~corrs:Fixtures.Books.corrs ()
  in
  Alcotest.(check bool) "optional edges: outer hint set" true
    (List.exists (fun m -> m.Mapping.outer) ms)

let test_max_candidates_respected () =
  let options = { Discover.default_options with max_candidates = 1 } in
  let ms =
    Discover.discover ~options ~source:(Fixtures.Books.source ())
      ~target:(Fixtures.Books.target ()) ~corrs:Fixtures.Books.corrs ()
  in
  Alcotest.(check int) "capped" 1 (List.length ms)

let test_outer_variants_exchange () =
  (* Example 1.2 end to end: the outer mapping realised as Skolemized
     tgd variants materialises the full outer join — an engineer-only
     employee survives with a null acnt, and the engineer+programmer
     person merges into one row. *)
  let module I = Smg_relational.Instance in
  let module V = Smg_relational.Value in
  let vs s = V.VString s in
  let ms =
    Discover.discover ~source:(Fixtures.Employees.source ())
      ~target:(Fixtures.Employees.target ()) ~corrs:Fixtures.Employees.corrs ()
  in
  let m = List.hd ms in
  assert m.Mapping.outer;
  let tgds =
    Mapping.outer_variants ~target:Fixtures.Employees.target_schema m
  in
  Alcotest.(check int) "three variants for a two-table join" 3
    (List.length tgds);
  let src_inst =
    I.empty
    |> fun i ->
    I.add_tuple i "programmer" ~header:[ "ssn"; "name"; "acnt" ]
      [| vs "1"; vs "ada"; vs "acnt1" |]
    |> fun i ->
    I.add_tuple i "engineer" ~header:[ "ssn"; "name"; "site" ]
      [| vs "1"; vs "ada"; vs "site1" |]
    |> fun i ->
    I.add_tuple i "engineer" ~header:[ "ssn"; "name"; "site" ]
      [| vs "2"; vs "bob"; vs "site2" |]
  in
  match
    Smg_cq.Chase.exchange ~source:Fixtures.Employees.source_schema
      ~target:Fixtures.Employees.target_schema ~mappings:tgds src_inst
  with
  | Smg_cq.Chase.Saturated out ->
      Alcotest.(check int) "two employees (ada merged, bob kept)" 2
        (I.cardinality out "employee");
      let rel = Option.get (I.relation out "employee") in
      let row_by_site site =
        List.find (fun t -> V.equal t.(2) (vs site)) rel.I.tuples
      in
      let ada = row_by_site "site1" and bob = row_by_site "site2" in
      Alcotest.(check bool) "ada's partial rows merged into one full row"
        true
        (V.equal ada.(1) (vs "ada") && V.equal ada.(3) (vs "acnt1"));
      (* name flows from programmer.name per the correspondences, so the
         engineer-only person keeps nulls there — outer-join semantics *)
      Alcotest.(check bool) "bob's name and acnt are null" true
        (V.is_null bob.(1) && V.is_null bob.(3))
  | Smg_cq.Chase.Bounded _ -> Alcotest.fail "exchange did not saturate"
  | Smg_cq.Chase.Failed msg -> Alcotest.fail msg

let test_provenance_recorded () =
  let ms = discover_books () in
  let best = List.hd ms in
  Alcotest.(check bool) "provenance non-empty" true
    (best.Mapping.provenance <> []);
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions the lossy composition" true
    (List.exists (contains ~needle:"non-functional path") best.Mapping.provenance)

let test_case_b_provenance () =
  (* DBLP author-of-title: neither corr target table covers both marked
     nodes, so the target CSG comes from Case B *)
  let scen = Smg_eval.Dataset_dblp.scenario () in
  let case =
    List.find
      (fun c -> c.Smg_eval.Scenario.case_name = "author-of-title")
      scen.Smg_eval.Scenario.cases
  in
  let ms =
    Discover.discover ~source:scen.Smg_eval.Scenario.source
      ~target:scen.Smg_eval.Scenario.target ~corrs:case.Smg_eval.Scenario.corrs ()
  in
  Alcotest.(check bool) "Case B recorded" true
    (List.exists
       (fun line ->
         String.length line >= 6 && String.sub line 0 6 = "Case B")
       (List.hd ms).Mapping.provenance)

let test_side_requires_stree_per_table () =
  Alcotest.check_raises "missing s-tree"
    (Invalid_argument "no s-tree for table bookstore") (fun () ->
      ignore
        (Discover.side ~schema:Fixtures.Books.source_schema
           ~cm:Fixtures.Books.source_cm
           (List.filter
              (fun st -> st.Smg_semantics.Stree.st_table <> "bookstore")
              Fixtures.Books.source_strees)))

let suite =
  [
    ( "discover",
      [
        Alcotest.test_case "Example 1.1: M5" `Quick test_books_m5;
        Alcotest.test_case "head safety" `Quick test_books_m5_head_safety;
        Alcotest.test_case "M5 executes as data exchange" `Quick test_books_tgd_executes;
        Alcotest.test_case "Example 1.2: ISA merge + outer" `Quick test_employees_isa_merge;
        Alcotest.test_case "Example 3.1: Case A.1" `Quick test_projects_case_a1;
        Alcotest.test_case "Example 3.1: Case A.2" `Quick test_projects_case_a2;
        Alcotest.test_case "trivial mapping" `Quick test_single_correspondence_trivial;
        Alcotest.test_case "empty correspondences" `Quick test_no_correspondences;
        Alcotest.test_case "deduplication" `Quick test_candidates_deduplicated;
        Alcotest.test_case "max candidates" `Quick test_max_candidates_respected;
        Alcotest.test_case "outer-join hint (min card 0)" `Quick
          test_outer_on_optional_hint;
        Alcotest.test_case "outer variants merge via Skolems" `Quick
          test_outer_variants_exchange;
        Alcotest.test_case "provenance recorded" `Quick test_provenance_recorded;
        Alcotest.test_case "Case B provenance" `Quick test_case_b_provenance;
        Alcotest.test_case "side validation" `Quick test_side_requires_stree_per_table;
      ] );
  ]
