(* Property-based end-to-end fuzzing: random conceptual models are
   forward-engineered with random er2rel configurations; the results
   must always validate, and mapping discovery over random
   correspondences between two random scenarios must terminate and
   produce sound candidates. *)

module Cml = Smg_cm.Cml
module Cardinality = Smg_cm.Cardinality
module Schema = Smg_relational.Schema
module Design = Smg_er2rel.Design
module Reverse = Smg_er2rel.Reverse
module Discover = Smg_core.Discover
module Mapping = Smg_cq.Mapping
module Query = Smg_cq.Query
module Atom = Smg_cq.Atom

(* ---- random CM generator ---------------------------------------------- *)

(* Classes C0..C{k-1}; ISA edges only from higher to lower indices (so
   hierarchies are acyclic); roots carry identifiers, subclasses
   inherit. Relationships and reified relationships over random
   endpoints. The [tag] keeps the two sides' vocabularies apart. *)
let gen_cm tag =
  QCheck.Gen.(
    let* k = int_range 3 6 in
    let name i = Printf.sprintf "%s%d" tag i in
    let attr i = Printf.sprintf "%sa%d" tag i in
    (* each class is either a root (owns an id) or a subclass of an
       earlier class *)
    let* parents =
      List.init k Fun.id
      |> List.map (fun i ->
             if i = 0 then return None
             else
               let* is_sub = bool in
               if is_sub then
                 let* p = int_range 0 (i - 1) in
                 return (Some p)
               else return None)
      |> flatten_l
    in
    let classes =
      List.mapi
        (fun i parent ->
          match parent with
          | None -> Cml.cls ~id:[ attr i ] (name i) [ attr i ]
          | Some _ ->
              (* own non-id attribute *)
              Cml.cls (name i) [ attr i ])
        parents
    in
    let isas =
      List.concat
        (List.mapi
           (fun i parent ->
             match parent with
             | Some p -> [ { Cml.sub = name i; super = name p } ]
             | None -> [])
           parents)
    in
    let* n_rels = int_range 1 4 in
    let* rels =
      list_repeat n_rels
        (let* s = int_range 0 (k - 1) in
         let* d = int_range 0 (k - 1) in
         let* functional = bool in
         let* partof = bool in
         return (s, d, functional, partof))
    in
    let binaries =
      List.mapi
        (fun j (s, d, functional, partof) ->
          let kind = if partof then Cml.PartOf else Cml.Ordinary in
          let rname = Printf.sprintf "%sr%d" tag j in
          if functional then Cml.functional ~kind rname ~src:(name s) ~dst:(name d)
          else Cml.many_many ~kind rname ~src:(name s) ~dst:(name d))
        rels
    in
    let* n_reified = int_range 0 2 in
    let* reified_specs =
      list_repeat n_reified
        (let* a = int_range 0 (k - 1) in
         let* b = int_range 0 (k - 1) in
         return (a, b))
    in
    let reified =
      List.mapi
        (fun j (a, b) ->
          let rr = Printf.sprintf "%sm%d" tag j in
          Cml.reified rr
            [
              (rr ^ "_x", name a, Cardinality.many);
              (rr ^ "_y", name b, Cardinality.many);
            ])
        reified_specs
    in
    return (Cml.make ~name:(tag ^ "cm") ~binaries ~reified ~isas classes))

let gen_config =
  QCheck.Gen.(
    let* isa = oneofl [ Design.Table_per_class; Design.Table_per_concrete ] in
    let* merge = bool in
    return { Design.default_config with isa; merge_functional = merge })

let arb_cm tag =
  QCheck.make (gen_cm tag) ~print:(fun cm -> Fmt.str "%a" Cml.pp cm)

let pp_config ppf (c : Design.config) =
  Fmt.pf ppf "isa=%s merge=%b"
    (match c.Design.isa with
    | Design.Table_per_class -> "per-class"
    | Design.Table_per_concrete -> "per-concrete")
    c.Design.merge_functional

let arb_scenario =
  let gen =
    QCheck.Gen.(
      let* src_cm = gen_cm "s" in
      let* tgt_cm = gen_cm "t" in
      let* src_cfg = gen_config in
      let* tgt_cfg = gen_config in
      let* seed = int_range 0 10_000 in
      return (src_cm, tgt_cm, src_cfg, tgt_cfg, seed))
  in
  QCheck.make gen ~print:(fun (s, t, c1, c2, seed) ->
      Fmt.str "seed=%d src[%a] tgt[%a]@.%a@.%a" seed pp_config c1 pp_config c2
        Cml.pp s Cml.pp t)

(* ---- properties -------------------------------------------------------- *)

let prop_er2rel_validates =
  QCheck.Test.make ~name:"er2rel output always validates" ~count:60
    (QCheck.make
       QCheck.Gen.(pair (gen_cm "s") gen_config)
       ~print:(fun (cm, cfg) -> Fmt.str "%a@.%a" pp_config cfg Cml.pp cm))
    (fun (cm, config) ->
      let schema, strees = Design.design ~config cm in
      let (_ : Discover.side) = Discover.side ~schema ~cm strees in
      true)

let prop_er2rel_reverse_roundtrip =
  QCheck.Test.make ~name:"reverse engineering er2rel output validates"
    ~count:40 (arb_cm "s")
    (fun cm ->
      let schema, _ = Design.design cm in
      let cm', strees' = Reverse.recover schema in
      let (_ : Discover.side) = Discover.side ~schema ~cm:cm' strees' in
      true)

(* pick pseudo-random correspondences between two schemas *)
let pick_corrs seed (src : Schema.t) (tgt : Schema.t) =
  let columns (s : Schema.t) =
    List.concat_map
      (fun (t : Schema.table) ->
        List.map (fun c -> (t.Schema.tbl_name, c)) (Schema.column_names t))
      s.Schema.tables
  in
  let sc = columns src and tc = columns tgt in
  if sc = [] || tc = [] then []
  else begin
    let n = 1 + (seed mod 3) in
    List.init n (fun i ->
        let s = List.nth sc ((seed + (i * 7)) mod List.length sc) in
        let t = List.nth tc ((seed + (i * 13)) mod List.length tc) in
        Mapping.corr ~src:s ~tgt:t)
    |> List.sort_uniq compare
  end

let sound_mapping (src : Schema.t) (tgt : Schema.t) corrs (m : Mapping.t) =
  let safe (q : Query.t) =
    let bv = Query.body_vars q in
    List.for_all (fun v -> List.mem v bv) (Query.head_vars q)
  in
  let well_formed schema (q : Query.t) =
    List.for_all
      (fun (a : Atom.t) ->
        match Schema.find_table schema a.Atom.pred with
        | Some t -> List.length a.Atom.args = List.length (Schema.column_names t)
        | None -> false)
      q.Query.body
  in
  safe m.Mapping.src_query && safe m.Mapping.tgt_query
  && well_formed src m.Mapping.src_query
  && well_formed tgt m.Mapping.tgt_query
  && List.for_all
       (fun c -> List.exists (fun c' -> Mapping.compare_corr c c' = 0) corrs)
       m.Mapping.covered

let prop_discover_sound =
  QCheck.Test.make ~name:"discovery on random scenarios is sound" ~count:60
    arb_scenario
    (fun (src_cm, tgt_cm, src_cfg, tgt_cfg, seed) ->
      let src_schema, src_strees = Design.design ~config:src_cfg src_cm in
      let tgt_schema, tgt_strees = Design.design ~config:tgt_cfg tgt_cm in
      let source = Discover.side ~schema:src_schema ~cm:src_cm src_strees in
      let target = Discover.side ~schema:tgt_schema ~cm:tgt_cm tgt_strees in
      let corrs = pick_corrs seed src_schema tgt_schema in
      QCheck.assume (corrs <> []);
      let options =
        { Discover.default_options with max_candidates = 10; max_path_len = 5 }
      in
      let ms = Discover.discover ~options ~source ~target ~corrs () in
      List.for_all (sound_mapping src_schema tgt_schema corrs) ms)

let prop_ric_sound =
  QCheck.Test.make ~name:"RIC baseline on random scenarios is sound" ~count:60
    arb_scenario
    (fun (src_cm, tgt_cm, src_cfg, tgt_cfg, seed) ->
      let src_schema, _ = Design.design ~config:src_cfg src_cm in
      let tgt_schema, _ = Design.design ~config:tgt_cfg tgt_cm in
      let corrs = pick_corrs seed src_schema tgt_schema in
      QCheck.assume (corrs <> []);
      let ms = Smg_ric.Baseline.generate ~source:src_schema ~target:tgt_schema ~corrs in
      List.for_all (sound_mapping src_schema tgt_schema corrs) ms)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "fuzz",
      [
        q prop_er2rel_validates;
        q prop_er2rel_reverse_roundtrip;
        q prop_discover_sound;
        q prop_ric_sound;
      ] );
  ]
