(* Tests for Smg_relational: values, schemas, instances, algebra. *)

module Value = Smg_relational.Value
module Schema = Smg_relational.Schema
module Instance = Smg_relational.Instance
module Algebra = Smg_relational.Algebra

let vs s = Value.VString s
let vi i = Value.VInt i

let people_schema =
  Schema.make ~name:"demo"
    [
      Schema.table ~key:[ "id" ] "person"
        [ ("id", Schema.TInt); ("name", Schema.TString); ("dept", Schema.TString) ];
      Schema.table ~key:[ "dept" ] "department"
        [ ("dept", Schema.TString); ("head", Schema.TString) ];
    ]
    [
      Schema.ric ~name:"fk_dept" ~from_:("person", [ "dept" ])
        ~to_:("department", [ "dept" ]);
    ]

let demo_instance =
  let add = Instance.add_tuple in
  Instance.empty
  |> fun i ->
  add i "person" ~header:[ "id"; "name"; "dept" ]
    [| vi 1; vs "ada"; vs "cs" |]
  |> fun i ->
  add i "person" ~header:[ "id"; "name"; "dept" ]
    [| vi 2; vs "bob"; vs "math" |]
  |> fun i ->
  add i "department" ~header:[ "dept"; "head" ] [| vs "cs"; vs "ada" |]

(* ---- values ----- *)

let test_value_equality () =
  Alcotest.(check bool) "ints equal" true (Value.equal (vi 3) (vi 3));
  Alcotest.(check bool) "null labels distinguish" false
    (Value.equal (Value.VNull 1) (Value.VNull 2));
  Alcotest.(check bool) "null never equals constant" false
    (Value.equal (Value.VNull 1) (vi 1));
  Alcotest.(check bool) "is_null" true (Value.is_null (Value.VNull 7))

let test_fresh_null () =
  Value.reset_null_counter ();
  let a = Value.fresh_null () and b = Value.fresh_null () in
  Alcotest.(check bool) "fresh nulls distinct" false (Value.equal a b)

(* ---- schema ----- *)

let test_schema_validation () =
  Alcotest.check_raises "duplicate table"
    (Invalid_argument "duplicate table t") (fun () ->
      ignore
        (Schema.make ~name:"bad"
           [ Schema.table "t" [ ("a", Schema.TInt) ]; Schema.table "t" [ ("a", Schema.TInt) ] ]
           []));
  Alcotest.check_raises "key must exist"
    (Invalid_argument "table t: key column b missing") (fun () ->
      ignore
        (Schema.make ~name:"bad"
           [ Schema.table ~key:[ "b" ] "t" [ ("a", Schema.TInt) ] ]
           []));
  Alcotest.check_raises "ric arity"
    (Invalid_argument "ric r: arity mismatch") (fun () ->
      ignore
        (Schema.make ~name:"bad"
           [
             Schema.table "t" [ ("a", Schema.TInt); ("b", Schema.TInt) ];
             Schema.table "u" [ ("c", Schema.TInt) ];
           ]
           [ Schema.ric ~name:"r" ~from_:("t", [ "a"; "b" ]) ~to_:("u", [ "c" ]) ]))

let test_schema_lookups () =
  let t = Schema.find_table_exn people_schema "person" in
  Alcotest.(check (list string)) "columns" [ "id"; "name"; "dept" ]
    (Schema.column_names t);
  Alcotest.(check bool) "has column" true (Schema.has_column t "name");
  Alcotest.(check bool) "column type" true
    (Schema.column_type t "id" = Some Schema.TInt);
  Alcotest.(check int) "rics_from person" 1
    (List.length (Schema.rics_from people_schema "person"));
  Alcotest.(check int) "rics_to department" 1
    (List.length (Schema.rics_to people_schema "department"))

(* ---- instance ----- *)

let test_instance_dedup () =
  let i =
    Instance.add_tuple demo_instance "person" ~header:[ "id"; "name"; "dept" ]
      [| vi 1; vs "ada"; vs "cs" |]
  in
  Alcotest.(check int) "duplicate tuple not added" 2
    (Instance.cardinality i "person")

let test_instance_arity_check () =
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "add_tuple person: arity 2 vs header 3") (fun () ->
      ignore
        (Instance.add_tuple demo_instance "person"
           ~header:[ "id"; "name"; "dept" ]
           [| vi 9; vs "zoe" |]))

let test_check_keys () =
  let bad =
    Instance.add_tuple demo_instance "person" ~header:[ "id"; "name"; "dept" ]
      [| vi 1; vs "imposter"; vs "cs" |]
  in
  Alcotest.(check int) "no violation initially" 0
    (List.length (Instance.check_keys people_schema demo_instance));
  Alcotest.(check int) "key violation detected" 1
    (List.length (Instance.check_keys people_schema bad))

let test_check_rics () =
  Alcotest.(check int) "bob's dept dangles" 1
    (List.length (Instance.check_rics people_schema demo_instance));
  let fixed =
    Instance.add_tuple demo_instance "department" ~header:[ "dept"; "head" ]
      [| vs "math"; vs "bob" |]
  in
  Alcotest.(check int) "satisfied after insert" 0
    (List.length (Instance.check_rics people_schema fixed))

(* ---- algebra ----- *)

let eval = Algebra.eval people_schema demo_instance

let test_select () =
  let r =
    eval (Algebra.Select (Algebra.Eq (Algebra.Col "dept", Algebra.Const (vs "cs")),
                          Algebra.Table "person"))
  in
  Alcotest.(check int) "one cs person" 1 (List.length r.Instance.tuples)

let test_project_dedups () =
  let r = eval (Algebra.Project ([ "dept" ], Algebra.Table "person")) in
  Alcotest.(check int) "two distinct departments" 2
    (List.length r.Instance.tuples)

let test_natural_join () =
  let r = eval (Algebra.Join (Algebra.Table "person", Algebra.Table "department")) in
  Alcotest.(check int) "only cs joins" 1 (List.length r.Instance.tuples);
  Alcotest.(check (list string)) "merged header" [ "id"; "name"; "dept"; "head" ]
    r.Instance.header

let test_rename_then_join () =
  (* Join person.name with department.head after aligning the names. *)
  let r =
    eval
      (Algebra.Join
         ( Algebra.Table "person",
           Algebra.Rename ([ ("head", "name"); ("dept", "d2") ], Algebra.Table "department") ))
  in
  Alcotest.(check int) "ada heads cs" 1 (List.length r.Instance.tuples)

let test_left_outer () =
  let r = eval (Algebra.LeftOuter (Algebra.Table "person", Algebra.Table "department")) in
  Alcotest.(check int) "bob padded with null" 2 (List.length r.Instance.tuples);
  let bob =
    List.find
      (fun t -> Value.equal t.(1) (vs "bob"))
      r.Instance.tuples
  in
  Alcotest.(check bool) "head is null" true (Value.is_null bob.(3))

let test_full_outer () =
  let i =
    Instance.add_tuple demo_instance "department" ~header:[ "dept"; "head" ]
      [| vs "bio"; vs "eve" |]
  in
  let r =
    Algebra.eval people_schema i
      (Algebra.FullOuter (Algebra.Table "person", Algebra.Table "department"))
  in
  (* cs joins, bob unmatched left, bio unmatched right *)
  Alcotest.(check int) "three rows" 3 (List.length r.Instance.tuples)

let test_union_diff () =
  let u =
    eval (Algebra.Union (Algebra.Table "person", Algebra.Table "person"))
  in
  Alcotest.(check int) "union dedups" 2 (List.length u.Instance.tuples);
  let d = eval (Algebra.Diff (Algebra.Table "person", Algebra.Table "person")) in
  Alcotest.(check int) "self-diff empty" 0 (List.length d.Instance.tuples)

let test_columns_checks () =
  Alcotest.(check (list string)) "join header" [ "id"; "name"; "dept"; "head" ]
    (Algebra.columns people_schema
       (Algebra.Join (Algebra.Table "person", Algebra.Table "department")));
  Alcotest.check_raises "bad projection"
    (Invalid_argument "project: unknown column nope") (fun () ->
      ignore
        (Algebra.columns people_schema
           (Algebra.Project ([ "nope" ], Algebra.Table "person"))))

(* property: join is commutative up to column order and tuple content *)
let prop_join_commutative =
  QCheck.Test.make ~name:"natural join commutes (as sets of row-maps)"
    ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 0 8) (pair small_int small_int))
    (fun pairs ->
      let inst =
        List.fold_left
          (fun i (a, b) ->
            let i =
              Instance.add_tuple i "person" ~header:[ "id"; "name"; "dept" ]
                [| vi a; vs ("n" ^ string_of_int a); vs ("d" ^ string_of_int b) |]
            in
            Instance.add_tuple i "department" ~header:[ "dept"; "head" ]
              [| vs ("d" ^ string_of_int b); vs "h" |])
          Instance.empty pairs
      in
      let as_maps (r : Instance.relation) =
        List.map
          (fun t -> List.sort compare (List.combine r.Instance.header (Array.to_list t)))
          r.Instance.tuples
        |> List.sort compare
      in
      let ab =
        Algebra.eval people_schema inst
          (Algebra.Join (Algebra.Table "person", Algebra.Table "department"))
      in
      let ba =
        Algebra.eval people_schema inst
          (Algebra.Join (Algebra.Table "department", Algebra.Table "person"))
      in
      as_maps ab = as_maps ba)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "relational.value",
      [
        Alcotest.test_case "equality" `Quick test_value_equality;
        Alcotest.test_case "fresh nulls" `Quick test_fresh_null;
      ] );
    ( "relational.schema",
      [
        Alcotest.test_case "validation" `Quick test_schema_validation;
        Alcotest.test_case "lookups" `Quick test_schema_lookups;
      ] );
    ( "relational.instance",
      [
        Alcotest.test_case "dedup" `Quick test_instance_dedup;
        Alcotest.test_case "arity check" `Quick test_instance_arity_check;
        Alcotest.test_case "key check" `Quick test_check_keys;
        Alcotest.test_case "ric check" `Quick test_check_rics;
      ] );
    ( "relational.algebra",
      [
        Alcotest.test_case "select" `Quick test_select;
        Alcotest.test_case "project dedups" `Quick test_project_dedups;
        Alcotest.test_case "natural join" `Quick test_natural_join;
        Alcotest.test_case "rename + join" `Quick test_rename_then_join;
        Alcotest.test_case "left outer" `Quick test_left_outer;
        Alcotest.test_case "full outer" `Quick test_full_outer;
        Alcotest.test_case "union/diff" `Quick test_union_diff;
        Alcotest.test_case "static columns" `Quick test_columns_checks;
        q prop_join_commutative;
      ] );
  ]
