(* Unit and property tests for Smg_graph: digraphs, Dijkstra, Steiner
   arborescences, path enumeration. *)

module Digraph = Smg_graph.Digraph
module Dijkstra = Smg_graph.Dijkstra
module Steiner = Smg_graph.Steiner
module Paths = Smg_graph.Paths

let unit_cost (_ : unit Digraph.edge) = Some 1.

(* A small diamond: 0 -> 1 -> 3, 0 -> 2 -> 3, plus a shortcut 0 -> 3. *)
let diamond =
  Digraph.make ~n:4
    [ (0, 1, ()); (1, 3, ()); (0, 2, ()); (2, 3, ()); (0, 3, ()) ]

let test_digraph_basics () =
  Alcotest.(check int) "nodes" 4 (Digraph.n_nodes diamond);
  Alcotest.(check int) "edges" 5 (Digraph.n_edges diamond);
  Alcotest.(check int) "out-degree of 0" 3
    (List.length (Digraph.out_edges diamond 0));
  Alcotest.(check int) "in-degree of 3" 3
    (List.length (Digraph.in_edges diamond 3));
  let e = Digraph.edge diamond 1 in
  Alcotest.(check int) "edge src" 1 e.Digraph.src;
  Alcotest.(check int) "edge dst" 3 e.Digraph.dst

let test_digraph_reverse () =
  let r = Digraph.reverse diamond in
  Alcotest.(check int) "reverse out-degree of 3" 3
    (List.length (Digraph.out_edges r 3));
  let e = Digraph.edge r 1 in
  Alcotest.(check int) "reversed edge src" 3 e.Digraph.src

let test_digraph_map_labels () =
  let g = Digraph.make ~n:2 [ (0, 1, 10) ] in
  let g' = Digraph.map_labels string_of_int g in
  Alcotest.(check string) "relabelled" "10" (Digraph.edge g' 0).Digraph.lbl

let test_digraph_bad_node () =
  Alcotest.check_raises "endpoint out of range"
    (Invalid_argument "Digraph.make: node 5 outside 0..2") (fun () ->
      ignore (Digraph.make ~n:3 [ (0, 5, ()) ]))

let test_is_tree_under () =
  Alcotest.(check bool) "path is a tree" true
    (Digraph.is_tree_under diamond ~root:0 ~edge_ids:[ 0; 1 ]);
  Alcotest.(check bool) "two parents is not a tree" false
    (Digraph.is_tree_under diamond ~root:0 ~edge_ids:[ 0; 1; 2; 3 ]);
  Alcotest.(check bool) "unreachable edge is not a tree" false
    (Digraph.is_tree_under diamond ~root:1 ~edge_ids:[ 1; 3 ])

let test_dijkstra_diamond () =
  let r = Dijkstra.run diamond ~cost:unit_cost ~src:0 in
  Alcotest.(check (option (float 1e-9))) "dist to 3" (Some 1.) (Dijkstra.dist r 3);
  Alcotest.(check (option (float 1e-9))) "dist to 1" (Some 1.) (Dijkstra.dist r 1);
  Alcotest.(check (option (list int))) "path to 3 is the shortcut" (Some [ 4 ])
    (Dijkstra.path_edges r 3)

let test_dijkstra_unreachable () =
  let g = Digraph.make ~n:3 [ (0, 1, ()) ] in
  let r = Dijkstra.run g ~cost:unit_cost ~src:0 in
  Alcotest.(check (option (float 1e-9))) "node 2 unreachable" None (Dijkstra.dist r 2);
  Alcotest.(check (option (list int))) "no path" None (Dijkstra.path_edges r 2)

let test_dijkstra_filtered () =
  (* Block the shortcut: the distance increases to 2. *)
  let cost (e : unit Digraph.edge) = if e.Digraph.id = 4 then None else Some 1. in
  let r = Dijkstra.run diamond ~cost ~src:0 in
  Alcotest.(check (option (float 1e-9))) "dist to 3 without shortcut" (Some 2.)
    (Dijkstra.dist r 3)

let test_dijkstra_weighted () =
  let g = Digraph.make ~n:3 [ (0, 1, 5.); (0, 2, 1.); (2, 1, 1.) ] in
  let cost (e : float Digraph.edge) = Some e.Digraph.lbl in
  let r = Dijkstra.run g ~cost ~src:0 in
  Alcotest.(check (option (float 1e-9))) "weighted shortest" (Some 2.)
    (Dijkstra.dist r 1);
  Alcotest.(check (option (list int))) "via node 2" (Some [ 1; 2 ])
    (Dijkstra.path_edges r 1)

let test_steiner_single_terminal () =
  match Steiner.arborescence diamond ~cost:unit_cost ~root:0 ~terminals:[ 3 ] with
  | None -> Alcotest.fail "expected a tree"
  | Some t ->
      Alcotest.(check (float 1e-9)) "cost" 1. t.Steiner.cost;
      Alcotest.(check (list int)) "edges" [ 4 ] t.Steiner.edge_ids

let test_steiner_two_terminals () =
  (* Reaching 1 and 2 from 0 needs both branch edges. *)
  match
    Steiner.arborescence diamond ~cost:unit_cost ~root:0 ~terminals:[ 1; 2 ]
  with
  | None -> Alcotest.fail "expected a tree"
  | Some t ->
      Alcotest.(check (float 1e-9)) "cost" 2. t.Steiner.cost;
      Alcotest.(check bool) "is arborescence" true
        (Digraph.is_tree_under diamond ~root:0 ~edge_ids:t.Steiner.edge_ids)

let test_steiner_through_steiner_node () =
  (* Star: 0 -> 1, 1 -> 2, 1 -> 3; terminals 2 and 3 from root 0 pass
     through the non-terminal node 1. *)
  let g = Digraph.make ~n:4 [ (0, 1, ()); (1, 2, ()); (1, 3, ()) ] in
  match Steiner.arborescence g ~cost:unit_cost ~root:0 ~terminals:[ 2; 3 ] with
  | None -> Alcotest.fail "expected a tree"
  | Some t ->
      Alcotest.(check (float 1e-9)) "cost shares the stem" 3. t.Steiner.cost;
      Alcotest.(check (list int)) "nodes" [ 0; 1; 2; 3 ]
        (Steiner.tree_nodes g t)

let test_steiner_unreachable () =
  let g = Digraph.make ~n:3 [ (0, 1, ()) ] in
  Alcotest.(check bool) "no arborescence" true
    (Steiner.arborescence g ~cost:unit_cost ~root:0 ~terminals:[ 2 ] = None)

let test_minimal_trees_ties () =
  (* Symmetric graph: both roots 1 and 2 give cost-1 trees to reach 3. *)
  let trees =
    Steiner.minimal_trees diamond ~cost:unit_cost ~roots:[ 1; 2 ]
      ~terminals:[ 3 ]
  in
  Alcotest.(check int) "two tied minimal trees" 2 (List.length trees);
  List.iter
    (fun t -> Alcotest.(check (float 1e-9)) "cost 1" 1. t.Steiner.cost)
    trees

let test_minimal_trees_prefers_cheaper_root () =
  let trees =
    Steiner.minimal_trees diamond ~cost:unit_cost ~roots:[ 0; 1 ]
      ~terminals:[ 3 ]
  in
  (* Root 0 via shortcut costs 1, root 1 costs 1: both minimal. *)
  Alcotest.(check int) "both roots tie" 2 (List.length trees)

let test_simple_paths () =
  let ps =
    Paths.simple_paths diamond ~src:0 ~dst:3 ~max_len:3 ~ok:(fun _ -> true)
  in
  Alcotest.(check int) "three simple paths" 3 (List.length ps);
  let lengths = List.sort compare (List.map (fun p -> List.length p.Paths.edge_ids) ps) in
  Alcotest.(check (list int)) "lengths" [ 1; 2; 2 ] lengths

let test_simple_paths_bound () =
  let ps =
    Paths.simple_paths diamond ~src:0 ~dst:3 ~max_len:1 ~ok:(fun _ -> true)
  in
  Alcotest.(check int) "only the shortcut" 1 (List.length ps)

let test_simple_paths_same_node () =
  let ps =
    Paths.simple_paths diamond ~src:2 ~dst:2 ~max_len:3 ~ok:(fun _ -> true)
  in
  Alcotest.(check int) "empty path" 1 (List.length ps);
  Alcotest.(check (list int)) "no edges" [] (List.hd ps).Paths.edge_ids

let test_simple_paths_zero_len () =
  let ps =
    Paths.simple_paths diamond ~src:0 ~dst:3 ~max_len:0 ~ok:(fun _ -> true)
  in
  Alcotest.(check int) "no path of length 0 to another node" 0
    (List.length ps)

let test_best_paths () =
  let score p = float_of_int (List.length p.Paths.edge_ids) in
  let ps = Paths.best_paths diamond ~src:0 ~dst:3 ~max_len:3 ~ok:(fun _ -> true) ~score in
  Alcotest.(check int) "single best path" 1 (List.length ps);
  Alcotest.(check (list int)) "the shortcut" [ 4 ] (List.hd ps).Paths.edge_ids

(* ---- property tests ---------------------------------------------------- *)

let random_graph_gen =
  QCheck.Gen.(
    sized_size (int_range 2 14) (fun n ->
        let* density = int_range 1 3 in
        let* edges =
          list_size
            (int_range n (n * density))
            (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
        in
        return (n, edges)))

let arb_graph =
  QCheck.make random_graph_gen ~print:(fun (n, es) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";"
           (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) es)))

let prop_dijkstra_triangle =
  QCheck.Test.make ~name:"dijkstra satisfies triangle inequality on edges"
    ~count:100 arb_graph (fun (n, es) ->
      let g = Digraph.make ~n (List.map (fun (a, b) -> (a, b, ())) es) in
      let r = Dijkstra.run g ~cost:unit_cost ~src:0 in
      Digraph.fold_edges
        (fun ok e ->
          ok
          &&
          match (Dijkstra.dist r e.Digraph.src, Dijkstra.dist r e.Digraph.dst) with
          | Some du, Some dv -> dv <= du +. 1. +. 1e-9
          | Some _, None -> false (* reachable src implies reachable dst *)
          | None, _ -> true)
        true g)

let prop_dijkstra_path_length_matches_dist =
  QCheck.Test.make ~name:"dijkstra path length equals distance" ~count:100
    arb_graph (fun (n, es) ->
      let g = Digraph.make ~n (List.map (fun (a, b) -> (a, b, ())) es) in
      let r = Dijkstra.run g ~cost:unit_cost ~src:0 in
      List.for_all
        (fun v ->
          match (Dijkstra.dist r v, Dijkstra.path_edges r v) with
          | Some d, Some p -> abs_float (d -. float_of_int (List.length p)) < 1e-9
          | None, None -> true
          | Some _, None | None, Some _ -> false)
        (Digraph.nodes g))

let prop_steiner_tree_is_tree_and_spans =
  QCheck.Test.make ~name:"steiner result is an arborescence spanning terminals"
    ~count:60
    QCheck.(pair arb_graph (QCheck.make QCheck.Gen.(int_range 1 3)))
    (fun ((n, es), k) ->
      let g = Digraph.make ~n (List.map (fun (a, b) -> (a, b, ())) es) in
      let terminals = List.init (min k n) (fun i -> i * (n - 1) / (max 1 (min k n - 1)) ) in
      let terminals = List.sort_uniq compare terminals in
      match Steiner.arborescence g ~cost:unit_cost ~root:0 ~terminals with
      | None -> true (* unreachable is fine *)
      | Some t ->
          let nodes = Steiner.tree_nodes g t in
          List.for_all (fun term -> List.mem term nodes) terminals
          && Digraph.is_tree_under g ~root:0 ~edge_ids:t.Steiner.edge_ids)

let prop_steiner_optimal_vs_bruteforce =
  (* For two terminals the optimum is min over meeting points w of
     d(r,w) + d(w,t1) + d(w,t2)?  No — for a *tree*, the optimum equals
     min over branch node w of d(r,w) + d(w,t1) + d(w,t2). *)
  QCheck.Test.make ~name:"steiner matches brute force for 2 terminals"
    ~count:60 arb_graph (fun (n, es) ->
      let g = Digraph.make ~n (List.map (fun (a, b) -> (a, b, ())) es) in
      let t1 = n - 1 and t2 = n / 2 in
      let sp = Dijkstra.all_pairs g ~cost:unit_cost in
      let d u v = Dijkstra.dist sp.(u) v in
      let brute =
        List.fold_left
          (fun acc w ->
            match (d 0 w, d w t1, d w t2) with
            | Some a, Some b, Some c -> min acc (a +. b +. c)
            | _ -> acc)
          infinity (Digraph.nodes g)
      in
      match Steiner.arborescence g ~cost:unit_cost ~root:0 ~terminals:[ t1; t2 ] with
      | None -> brute = infinity
      | Some t -> t.Steiner.cost <= brute +. 1e-9)

let prop_simple_paths_are_simple =
  QCheck.Test.make ~name:"enumerated paths are simple and well-formed"
    ~count:60 arb_graph (fun (n, es) ->
      let g = Digraph.make ~n (List.map (fun (a, b) -> (a, b, ())) es) in
      let ps =
        Paths.simple_paths g ~src:0 ~dst:(n - 1) ~max_len:4 ~ok:(fun _ -> true)
      in
      List.for_all
        (fun p ->
          let nodes = p.Paths.nodes in
          List.length (List.sort_uniq compare nodes) = List.length nodes
          && List.length nodes = List.length p.Paths.edge_ids + 1)
        ps)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "graph.digraph",
      [
        Alcotest.test_case "basics" `Quick test_digraph_basics;
        Alcotest.test_case "reverse" `Quick test_digraph_reverse;
        Alcotest.test_case "map labels" `Quick test_digraph_map_labels;
        Alcotest.test_case "bad node" `Quick test_digraph_bad_node;
        Alcotest.test_case "is_tree_under" `Quick test_is_tree_under;
      ] );
    ( "graph.dijkstra",
      [
        Alcotest.test_case "diamond" `Quick test_dijkstra_diamond;
        Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable;
        Alcotest.test_case "filtered edges" `Quick test_dijkstra_filtered;
        Alcotest.test_case "weighted" `Quick test_dijkstra_weighted;
        q prop_dijkstra_triangle;
        q prop_dijkstra_path_length_matches_dist;
      ] );
    ( "graph.steiner",
      [
        Alcotest.test_case "single terminal" `Quick test_steiner_single_terminal;
        Alcotest.test_case "two terminals" `Quick test_steiner_two_terminals;
        Alcotest.test_case "steiner node" `Quick test_steiner_through_steiner_node;
        Alcotest.test_case "unreachable" `Quick test_steiner_unreachable;
        Alcotest.test_case "ties kept" `Quick test_minimal_trees_ties;
        Alcotest.test_case "tied roots" `Quick test_minimal_trees_prefers_cheaper_root;
        q prop_steiner_tree_is_tree_and_spans;
        q prop_steiner_optimal_vs_bruteforce;
      ] );
    ( "graph.paths",
      [
        Alcotest.test_case "simple paths" `Quick test_simple_paths;
        Alcotest.test_case "length bound" `Quick test_simple_paths_bound;
        Alcotest.test_case "src = dst" `Quick test_simple_paths_same_node;
        Alcotest.test_case "zero length bound" `Quick test_simple_paths_zero_len;
        Alcotest.test_case "best paths" `Quick test_best_paths;
        q prop_simple_paths_are_simple;
      ] );
  ]
