(* Tests for the evaluation harness: measures, scenario validation, and
   the headline experimental claims (the shape of Figures 6/7). *)

module Mapping = Smg_cq.Mapping
module Query = Smg_cq.Query
module Atom = Smg_cq.Atom
module Measures = Smg_eval.Measures
module Scenario = Smg_eval.Scenario
module Experiments = Smg_eval.Experiments

let mk name =
  Mapping.make ~name
    ~src_query:(Query.make ~head:[ Atom.v "x" ] [ Atom.atom name [ Atom.v "x" ] ])
    ~tgt_query:(Query.make ~head:[ Atom.v "y" ] [ Atom.atom "t" [ Atom.v "y" ] ])
    ~covered:[ Mapping.corr_of_strings (name ^ ".a") "t.b" ]
    ()

let test_measures_basic () =
  let r = mk "r" and s = mk "s" in
  let o = Measures.score ~generated:[ r; s ] ~benchmark:[ r ] () in
  Alcotest.(check int) "hits" 1 o.Measures.n_hits;
  Alcotest.(check (float 1e-9)) "precision" 0.5 o.Measures.precision;
  Alcotest.(check (float 1e-9)) "recall" 1.0 o.Measures.recall

let test_measures_empty_generated () =
  let o = Measures.score ~generated:[] ~benchmark:[ mk "r" ] () in
  Alcotest.(check (float 1e-9)) "precision 0" 0. o.Measures.precision;
  Alcotest.(check (float 1e-9)) "recall 0" 0. o.Measures.recall

let test_average () =
  Alcotest.(check (pair (float 1e-9) (float 1e-9)))
    "mean" (0.5, 0.75)
    (Measures.average [ (1.0, 1.0); (0.0, 0.5) ]);
  Alcotest.(check (pair (float 1e-9) (float 1e-9)))
    "empty" (0., 0.) (Measures.average [])

let test_n_class_nodes () =
  Alcotest.(check int) "books source CM: 3 classes + 2 reified" 5
    (Scenario.n_class_nodes Fixtures.Books.source_cm)

(* every built-in scenario validates and the headline claims hold *)
let all_results = lazy (Experiments.run_all (Smg_eval.Datasets.all ()))

let test_scenarios_validate () =
  List.iter Scenario.validate (Smg_eval.Datasets.all ())

let test_scenario_count () =
  let scens = Smg_eval.Datasets.all () in
  Alcotest.(check int) "seven domains" 7 (List.length scens);
  let total_cases =
    List.fold_left (fun acc s -> acc + List.length s.Scenario.cases) 0 scens
  in
  Alcotest.(check int) "34 benchmark mapping cases" 34 total_cases

let test_semantic_recall_is_one () =
  (* "the semantic approach did not miss any correct mappings … it got
     all the mappings sought" (Figure 7's headline) *)
  List.iter
    (fun (r : Experiments.domain_result) ->
      Alcotest.(check (float 1e-9))
        (r.Experiments.dr_scenario.Scenario.scen_name ^ " semantic recall")
        1.0 r.Experiments.dr_sem_recall)
    (Lazy.force all_results)

let test_semantic_dominates_ric () =
  List.iter
    (fun (r : Experiments.domain_result) ->
      let name = r.Experiments.dr_scenario.Scenario.scen_name in
      Alcotest.(check bool)
        (name ^ ": semantic precision >= RIC")
        true
        (r.Experiments.dr_sem_precision >= r.Experiments.dr_ric_precision);
      Alcotest.(check bool)
        (name ^ ": semantic recall >= RIC")
        true
        (r.Experiments.dr_sem_recall >= r.Experiments.dr_ric_recall))
    (Lazy.force all_results)

let test_ric_misses_isa_cases () =
  (* the baseline must fail exactly where the paper says it does: the
     ISA-merge cases of Amalgam *)
  let amalgam =
    List.find
      (fun r -> r.Experiments.dr_scenario.Scenario.scen_name = "Amalgam")
      (Lazy.force all_results)
  in
  let case name =
    List.find
      (fun c ->
        c.Experiments.cr_case = name
        && c.Experiments.cr_method = Experiments.Ric_based)
      amalgam.Experiments.dr_cases
  in
  Alcotest.(check (float 1e-9)) "hierarchy-merge unreachable for RIC" 0.
    (case "hierarchy-merge").Experiments.cr_outcome.Measures.recall;
  Alcotest.(check (float 1e-9)) "rootless-merge unreachable for RIC" 0.
    (case "rootless-merge").Experiments.cr_outcome.Measures.recall

let test_generation_time_band () =
  (* the paper's Table 1: "it took less than one second" per domain *)
  List.iter
    (fun (r : Experiments.domain_result) ->
      Alcotest.(check bool)
        (r.Experiments.dr_scenario.Scenario.scen_name ^ " under a second")
        true
        (r.Experiments.dr_sem_seconds < 1.0))
    (Lazy.force all_results)

let test_micro_ablation () =
  (* each disabled ingredient must hurt at least one micro-scenario *)
  let rows = Smg_eval.Ablation.run_micro () in
  let get name =
    List.find (fun r -> r.Smg_eval.Ablation.r_variant = name) rows
  in
  let full = get "full" in
  Alcotest.(check (float 1e-9)) "full precision" 1.0 full.Smg_eval.Ablation.r_precision;
  Alcotest.(check (float 1e-9)) "full recall" 1.0 full.Smg_eval.Ablation.r_recall;
  List.iter
    (fun v ->
      let r = get v in
      Alcotest.(check bool) (v ^ " hurts the micros") true
        (r.Smg_eval.Ablation.r_precision < 1.0
        || r.Smg_eval.Ablation.r_recall < 1.0))
    [ "no-shapes"; "no-preselection"; "no-lossy"; "no-partial" ]

let test_partof_ablation_on_ut () =
  (* Example 1.3: disabling the partOf category admits the deanOf
     pairing on the UT case *)
  let scen = Smg_eval.Dataset_ut.scenario () in
  let case =
    List.find
      (fun c -> c.Scenario.case_name = "partof-disambiguation")
      scen.Scenario.cases
  in
  let count options =
    List.length
      (Smg_core.Discover.discover ~options ~source:scen.Scenario.source
         ~target:scen.Scenario.target ~corrs:case.Scenario.corrs ())
  in
  let with_partof = count Experiments.semantic_options in
  let without =
    count
      { Experiments.semantic_options with Smg_core.Discover.use_partof = false }
  in
  Alcotest.(check bool) "partOf filter prunes a candidate" true
    (without > with_partof)

let test_witness_populate_satisfies_constraints () =
  let schema = Fixtures.Books.source_schema in
  let inst = Smg_eval.Witness.populate ~seed:7 schema in
  Alcotest.(check int) "rics hold" 0
    (List.length (Smg_relational.Instance.check_rics schema inst));
  Alcotest.(check int) "keys hold" 0
    (List.length (Smg_relational.Instance.check_keys schema inst));
  Alcotest.(check bool) "non-empty" true
    (Smg_relational.Instance.total_tuples inst > 0)

let test_witness_deterministic () =
  let scen = Smg_eval.Dataset_threesdb.scenario () in
  let case = List.hd scen.Scenario.cases in
  let v1 = Smg_eval.Witness.check_case ~seed:9 scen case in
  let v2 = Smg_eval.Witness.check_case ~seed:9 scen case in
  Alcotest.(check bool) "same verdict for same seed" true (v1 = v2)

let test_witness_all_hits_agree () =
  (* every matched candidate must agree with its benchmark on a
     generated instance — empirical confirmation of same_under *)
  List.iter
    (fun scen ->
      List.iter
        (fun v ->
          Alcotest.(check bool)
            (scen.Scenario.scen_name ^ "/" ^ v.Smg_eval.Witness.w_case
           ^ " agrees")
            true v.Smg_eval.Witness.w_agree)
        (Smg_eval.Witness.check_scenario scen))
    (Smg_eval.Datasets.all ())

let suite =
  [
    ( "eval.measures",
      [
        Alcotest.test_case "precision/recall" `Quick test_measures_basic;
        Alcotest.test_case "empty P" `Quick test_measures_empty_generated;
        Alcotest.test_case "average" `Quick test_average;
        Alcotest.test_case "class node count" `Quick test_n_class_nodes;
      ] );
    ( "eval.experiments",
      [
        Alcotest.test_case "scenarios validate" `Quick test_scenarios_validate;
        Alcotest.test_case "dataset sizes" `Quick test_scenario_count;
        Alcotest.test_case "semantic recall = 1.0 (Fig 7)" `Slow
          test_semantic_recall_is_one;
        Alcotest.test_case "semantic dominates RIC (Fig 6/7)" `Slow
          test_semantic_dominates_ric;
        Alcotest.test_case "RIC misses ISA merges" `Slow test_ric_misses_isa_cases;
        Alcotest.test_case "sub-second generation (Table 1)" `Slow
          test_generation_time_band;
        Alcotest.test_case "micro ablations isolate ingredients" `Slow
          test_micro_ablation;
        Alcotest.test_case "partOf ablation (Example 1.3)" `Quick
          test_partof_ablation_on_ut;
        Alcotest.test_case "witness instances satisfy constraints" `Quick
          test_witness_populate_satisfies_constraints;
        Alcotest.test_case "witnesses: hits agree with benchmarks" `Slow
          test_witness_all_hits_agree;
        Alcotest.test_case "witness determinism" `Quick test_witness_deterministic;
      ] );
  ]
