(* Shared test fixtures: the paper's running examples as reusable
   scenario builders.

   - [books]: Example 1.1 (person/writes/book/soldAt/bookstore vs
     hasBookSoldAt)
   - [employees]: Example 1.2 (programmer+engineer vs employee,
     ISA encodings)
   - [projects]: Example 3.1 (control/manage vs proj) *)

module Schema = Smg_relational.Schema
module Cml = Smg_cm.Cml
module Cardinality = Smg_cm.Cardinality
module Stree = Smg_semantics.Stree
module Mapping = Smg_cq.Mapping
module Discover = Smg_core.Discover

let n = Stree.nref

(* ---------------- books (Example 1.1) ---------------- *)

module Books = struct
  let source_schema =
    Schema.make ~name:"src"
      [
        Schema.table ~key:[ "pname" ] "person" [ ("pname", Schema.TString) ];
        Schema.table ~key:[ "pname"; "bid" ] "writes"
          [ ("pname", Schema.TString); ("bid", Schema.TString) ];
        Schema.table ~key:[ "bid" ] "book" [ ("bid", Schema.TString) ];
        Schema.table ~key:[ "bid"; "sid" ] "soldAt"
          [ ("bid", Schema.TString); ("sid", Schema.TString) ];
        Schema.table ~key:[ "sid" ] "bookstore" [ ("sid", Schema.TString) ];
      ]
      [
        Schema.ric ~name:"r1" ~from_:("writes", [ "pname" ]) ~to_:("person", [ "pname" ]);
        Schema.ric ~name:"r2" ~from_:("writes", [ "bid" ]) ~to_:("book", [ "bid" ]);
        Schema.ric ~name:"r3" ~from_:("soldAt", [ "bid" ]) ~to_:("book", [ "bid" ]);
        Schema.ric ~name:"r4" ~from_:("soldAt", [ "sid" ]) ~to_:("bookstore", [ "sid" ]);
      ]

  let source_cm =
    Cml.make ~name:"src-cm"
      ~reified:
        [
          Cml.reified "writes"
            [
              ("writes_author", "Person", Cardinality.many);
              ("writes_work", "Book", Cardinality.at_least_one);
            ];
          Cml.reified "soldAt"
            [
              ("soldAt_item", "Book", Cardinality.many);
              ("soldAt_store", "Bookstore", Cardinality.many);
            ];
        ]
      [
        Cml.cls ~id:[ "pname" ] "Person" [ "pname" ];
        Cml.cls ~id:[ "bid" ] "Book" [ "bid" ];
        Cml.cls ~id:[ "sid" ] "Bookstore" [ "sid" ];
      ]

  let source_strees =
    [
      Stree.make ~table:"person" ~anchor:(n "Person")
        ~cols:[ ("pname", n "Person", "pname") ]
        ~ids:[ (n "Person", [ "pname" ]) ]
        [ n "Person" ];
      Stree.make ~table:"book" ~anchor:(n "Book")
        ~cols:[ ("bid", n "Book", "bid") ]
        ~ids:[ (n "Book", [ "bid" ]) ]
        [ n "Book" ];
      Stree.make ~table:"bookstore" ~anchor:(n "Bookstore")
        ~cols:[ ("sid", n "Bookstore", "sid") ]
        ~ids:[ (n "Bookstore", [ "sid" ]) ]
        [ n "Bookstore" ];
      Stree.make ~table:"writes" ~anchor:(n "writes")
        ~edges:
          [
            { se_src = n "writes"; se_kind = Stree.SRole "writes_author"; se_dst = n "Person" };
            { se_src = n "writes"; se_kind = Stree.SRole "writes_work"; se_dst = n "Book" };
          ]
        ~cols:[ ("pname", n "Person", "pname"); ("bid", n "Book", "bid") ]
        ~ids:
          [
            (n "Person", [ "pname" ]);
            (n "Book", [ "bid" ]);
            (n "writes", [ "pname"; "bid" ]);
          ]
        [ n "writes"; n "Person"; n "Book" ];
      Stree.make ~table:"soldAt" ~anchor:(n "soldAt")
        ~edges:
          [
            { se_src = n "soldAt"; se_kind = Stree.SRole "soldAt_item"; se_dst = n "Book" };
            { se_src = n "soldAt"; se_kind = Stree.SRole "soldAt_store"; se_dst = n "Bookstore" };
          ]
        ~cols:[ ("bid", n "Book", "bid"); ("sid", n "Bookstore", "sid") ]
        ~ids:
          [
            (n "Book", [ "bid" ]);
            (n "Bookstore", [ "sid" ]);
            (n "soldAt", [ "bid"; "sid" ]);
          ]
        [ n "soldAt"; n "Book"; n "Bookstore" ];
    ]

  let target_schema =
    Schema.make ~name:"tgt"
      [
        Schema.table ~key:[ "aname"; "sid" ] "hasBookSoldAt"
          [ ("aname", Schema.TString); ("sid", Schema.TString) ];
      ]
      []

  let target_cm =
    Cml.make ~name:"tgt-cm"
      ~reified:
        [
          Cml.reified "hasBookSoldAt"
            [
              ("hb_author", "Author", Cardinality.many);
              ("hb_store", "Bookstore", Cardinality.many);
            ];
        ]
      [
        Cml.cls ~id:[ "aname" ] "Author" [ "aname" ];
        Cml.cls ~id:[ "sid" ] "Bookstore" [ "sid" ];
      ]

  let target_strees =
    [
      Stree.make ~table:"hasBookSoldAt" ~anchor:(n "hasBookSoldAt")
        ~edges:
          [
            { se_src = n "hasBookSoldAt"; se_kind = Stree.SRole "hb_author"; se_dst = n "Author" };
            { se_src = n "hasBookSoldAt"; se_kind = Stree.SRole "hb_store"; se_dst = n "Bookstore" };
          ]
        ~cols:[ ("aname", n "Author", "aname"); ("sid", n "Bookstore", "sid") ]
        ~ids:
          [
            (n "Author", [ "aname" ]);
            (n "Bookstore", [ "sid" ]);
            (n "hasBookSoldAt", [ "aname"; "sid" ]);
          ]
        [ n "hasBookSoldAt"; n "Author"; n "Bookstore" ];
    ]

  let source () = Discover.side ~schema:source_schema ~cm:source_cm source_strees
  let target () = Discover.side ~schema:target_schema ~cm:target_cm target_strees

  let corrs =
    [
      Mapping.corr_of_strings "person.pname" "hasBookSoldAt.aname";
      Mapping.corr_of_strings "bookstore.sid" "hasBookSoldAt.sid";
    ]
end

(* ---------------- employees (Example 1.2) ---------------- *)

module Employees = struct
  let cm =
    Cml.make ~name:"emp-cm"
      ~isas:
        [
          { Cml.sub = "Engineer"; super = "Employee" };
          { Cml.sub = "Programmer"; super = "Employee" };
        ]
      ~covers:[ ("Employee", [ "Engineer"; "Programmer" ]) ]
      [
        Cml.cls ~id:[ "ssn" ] "Employee" [ "ssn"; "name" ];
        Cml.cls "Engineer" [ "site" ];
        Cml.cls "Programmer" [ "acnt" ];
      ]

  let source_schema =
    Schema.make ~name:"src"
      [
        Schema.table ~key:[ "ssn" ] "programmer"
          [ ("ssn", Schema.TString); ("name", Schema.TString); ("acnt", Schema.TString) ];
        Schema.table ~key:[ "ssn" ] "engineer"
          [ ("ssn", Schema.TString); ("name", Schema.TString); ("site", Schema.TString) ];
      ]
      []

  let source_strees =
    [
      Stree.make ~table:"programmer" ~anchor:(n "Programmer")
        ~edges:[ { se_src = n "Programmer"; se_kind = Stree.SIsa; se_dst = n "Employee" } ]
        ~cols:
          [
            ("ssn", n "Programmer", "ssn");
            ("name", n "Programmer", "name");
            ("acnt", n "Programmer", "acnt");
          ]
        ~ids:[ (n "Programmer", [ "ssn" ]) ]
        [ n "Programmer"; n "Employee" ];
      Stree.make ~table:"engineer" ~anchor:(n "Engineer")
        ~edges:[ { se_src = n "Engineer"; se_kind = Stree.SIsa; se_dst = n "Employee" } ]
        ~cols:
          [
            ("ssn", n "Engineer", "ssn");
            ("name", n "Engineer", "name");
            ("site", n "Engineer", "site");
          ]
        ~ids:[ (n "Engineer", [ "ssn" ]) ]
        [ n "Engineer"; n "Employee" ];
    ]

  (* target uses a different identifier (eid) and one flat table *)
  let target_cm =
    Cml.make ~name:"emp-cm-t"
      ~isas:
        [
          { Cml.sub = "Engineer"; super = "Employee" };
          { Cml.sub = "Programmer"; super = "Employee" };
        ]
      ~covers:[ ("Employee", [ "Engineer"; "Programmer" ]) ]
      [
        Cml.cls ~id:[ "eid" ] "Employee" [ "eid"; "name" ];
        Cml.cls "Engineer" [ "site" ];
        Cml.cls "Programmer" [ "acnt" ];
      ]

  let target_schema =
    Schema.make ~name:"tgt"
      [
        Schema.table ~key:[ "eid" ] "employee"
          [
            ("eid", Schema.TString);
            ("name", Schema.TString);
            ("site", Schema.TString);
            ("acnt", Schema.TString);
          ];
      ]
      []

  let target_strees =
    [
      Stree.make ~table:"employee" ~anchor:(n "Employee")
        ~edges:
          [
            { se_src = n "Engineer"; se_kind = Stree.SIsa; se_dst = n "Employee" };
            { se_src = n "Programmer"; se_kind = Stree.SIsa; se_dst = n "Employee" };
          ]
        ~cols:
          [
            ("eid", n "Employee", "eid");
            ("name", n "Employee", "name");
            ("site", n "Engineer", "site");
            ("acnt", n "Programmer", "acnt");
          ]
        ~ids:[ (n "Employee", [ "eid" ]) ]
        [ n "Employee"; n "Engineer"; n "Programmer" ];
    ]

  let source () = Discover.side ~schema:source_schema ~cm source_strees
  let target () = Discover.side ~schema:target_schema ~cm:target_cm target_strees

  let corrs =
    [
      Mapping.corr_of_strings "programmer.name" "employee.name";
      Mapping.corr_of_strings "programmer.acnt" "employee.acnt";
      Mapping.corr_of_strings "engineer.site" "employee.site";
    ]
end

(* ---------------- projects (Example 3.1) ---------------- *)

module Projects = struct
  let source_cm =
    Cml.make ~name:"proj-cm-s"
      ~binaries:
        [
          Cml.functional ~total:true "controlledBy" ~src:"Project" ~dst:"Department";
          Cml.functional ~total:true "hasManager" ~src:"Department" ~dst:"Employee";
        ]
      [
        Cml.cls ~id:[ "proj" ] "Project" [ "proj" ];
        Cml.cls ~id:[ "dept" ] "Department" [ "dept" ];
        Cml.cls ~id:[ "mgr" ] "Employee" [ "mgr" ];
      ]

  let source_schema =
    Schema.make ~name:"src"
      [
        Schema.table ~key:[ "proj" ] "control"
          [ ("proj", Schema.TString); ("dept", Schema.TString) ];
        Schema.table ~key:[ "dept" ] "manage"
          [ ("dept", Schema.TString); ("mgr", Schema.TString) ];
      ]
      [
        Schema.ric ~name:"fk" ~from_:("control", [ "dept" ]) ~to_:("manage", [ "dept" ]);
      ]

  let source_strees =
    [
      Stree.make ~table:"control" ~anchor:(n "Project")
        ~edges:
          [
            { se_src = n "Project"; se_kind = Stree.SRel "controlledBy"; se_dst = n "Department" };
          ]
        ~cols:[ ("proj", n "Project", "proj"); ("dept", n "Department", "dept") ]
        ~ids:[ (n "Project", [ "proj" ]); (n "Department", [ "dept" ]) ]
        [ n "Project"; n "Department" ];
      Stree.make ~table:"manage" ~anchor:(n "Department")
        ~edges:
          [
            { se_src = n "Department"; se_kind = Stree.SRel "hasManager"; se_dst = n "Employee" };
          ]
        ~cols:[ ("dept", n "Department", "dept"); ("mgr", n "Employee", "mgr") ]
        ~ids:[ (n "Department", [ "dept" ]); (n "Employee", [ "mgr" ]) ]
        [ n "Department"; n "Employee" ];
    ]

  let target_cm =
    Cml.make ~name:"proj-cm-t"
      ~binaries:
        [
          Cml.functional ~total:true "inDept" ~src:"Proj" ~dst:"Department";
          Cml.functional "managedBy" ~src:"Proj" ~dst:"Employee";
        ]
      [
        Cml.cls ~id:[ "pnum" ] "Proj" [ "pnum" ];
        Cml.cls ~id:[ "dept" ] "Department" [ "dept" ];
        Cml.cls ~id:[ "emp" ] "Employee" [ "emp" ];
      ]

  let target_schema =
    Schema.make ~name:"tgt"
      [
        Schema.table ~key:[ "pnum" ] "proj"
          [ ("pnum", Schema.TString); ("dept", Schema.TString); ("emp", Schema.TString) ];
      ]
      []

  let target_strees =
    [
      Stree.make ~table:"proj" ~anchor:(n "Proj")
        ~edges:
          [
            { se_src = n "Proj"; se_kind = Stree.SRel "inDept"; se_dst = n "Department" };
            { se_src = n "Proj"; se_kind = Stree.SRel "managedBy"; se_dst = n "Employee" };
          ]
        ~cols:
          [
            ("pnum", n "Proj", "pnum");
            ("dept", n "Department", "dept");
            ("emp", n "Employee", "emp");
          ]
        ~ids:[ (n "Proj", [ "pnum" ]); (n "Department", [ "dept" ]); (n "Employee", [ "emp" ]) ]
        [ n "Proj"; n "Department"; n "Employee" ];
    ]

  let source () = Discover.side ~schema:source_schema ~cm:source_cm source_strees
  let target () = Discover.side ~schema:target_schema ~cm:target_cm target_strees

  let corrs =
    [
      Mapping.corr_of_strings "control.proj" "proj.pnum";
      Mapping.corr_of_strings "control.dept" "proj.dept";
      Mapping.corr_of_strings "manage.mgr" "proj.emp";
    ]
end

(* Which source tables a mapping's source query mentions. *)
let src_tables (m : Mapping.t) =
  List.sort_uniq compare
    (List.map
       (fun (a : Smg_cq.Atom.t) -> a.Smg_cq.Atom.pred)
       m.Mapping.src_query.Smg_cq.Query.body)

let tgt_tables (m : Mapping.t) =
  List.sort_uniq compare
    (List.map
       (fun (a : Smg_cq.Atom.t) -> a.Smg_cq.Atom.pred)
       m.Mapping.tgt_query.Smg_cq.Query.body)
