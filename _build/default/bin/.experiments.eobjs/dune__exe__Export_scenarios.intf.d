bin/export_scenarios.mli:
