bin/export_scenarios.ml: Array Filename List Printf Smg_cm Smg_core Smg_dsl Smg_eval Smg_semantics String Sys
