bin/mapdisc.mli:
