bin/experiments.mli:
