bin/mapdisc.ml: Arg Cmd Cmdliner Fmt List Logs Logs_fmt Option Smg_cm Smg_core Smg_cq Smg_dsl Smg_matching Smg_relational Smg_ric Term
