bin/experiments.ml: Cmd Cmdliner Fmt Lazy List Smg_eval Term
