(* mapdisc — discover schema mappings for a scenario described in the
   smg DSL.

   A scenario file contains two schemas (first = source, second =
   target), two CMs (same order), one `semantics` block per table, and
   `corr` declarations. See README for the format.

   Subcommands:
     discover FILE   run mapping discovery (semantic, RIC-based, or both)
     match FILE      propose correspondences with the name matcher
     show FILE       parse and pretty-print the scenario (round-trip) *)

open Cmdliner
module Ast = Smg_dsl.Ast
module Schema = Smg_relational.Schema
module Mapping = Smg_cq.Mapping
module Discover = Smg_core.Discover

let load file =
  let doc = Smg_dsl.Parser.parse_file file in
  match (doc.Ast.doc_schemas, doc.Ast.doc_cms) with
  | [ src_schema; tgt_schema ], [ src_cm; tgt_cm ] ->
      let strees_for (schema : Schema.t) =
        List.filter_map
          (fun (b : Ast.semantics_block) ->
            if Option.is_some (Schema.find_table schema b.Ast.sem_table) then
              Some b.Ast.sem_stree
            else None)
          doc.Ast.doc_semantics
      in
      let source =
        Discover.side ~schema:src_schema ~cm:src_cm (strees_for src_schema)
      in
      let target =
        Discover.side ~schema:tgt_schema ~cm:tgt_cm (strees_for tgt_schema)
      in
      (doc, source, target)
  | _ ->
      Fmt.epr "error: a scenario needs exactly two schemas and two CMs@.";
      exit 2

type meth = Semantic | Ric | Both

let run_discover file meth verbose sql =
  if verbose then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  let doc, source, target = load file in
  let corrs = doc.Ast.doc_corrs in
  if corrs = [] then begin
    Fmt.epr "error: the scenario declares no correspondences@.";
    exit 2
  end;
  let print_all title ms =
    Fmt.pr "== %s: %d candidate(s) ==@." title (List.length ms);
    List.iteri
      (fun i m ->
        Fmt.pr "@.#%d %a@." (i + 1) Mapping.pp m;
        Fmt.pr "   tgd: %a@." Smg_cq.Dependency.pp_tgd (Mapping.to_tgd m);
        Fmt.pr "   source algebra: %a@."
          Smg_relational.Algebra.pp
          (Mapping.src_algebra source.Discover.schema m);
        if sql then begin
          Fmt.pr "   source SQL:@.%s@."
            (Smg_cq.Sql.select_of_query source.Discover.schema
               m.Mapping.src_query);
          List.iter (Fmt.pr "   exchange SQL:@.%s@.")
            (Smg_cq.Sql.insert_of_mapping ~source:source.Discover.schema
               ~target:target.Discover.schema m)
        end)
      ms
  in
  (match meth with
  | Semantic | Both ->
      print_all "semantic"
        (Discover.discover ~source ~target ~corrs ())
  | Ric -> ());
  match meth with
  | Ric | Both ->
      print_all "RIC-based (Clio-style)"
        (Smg_ric.Baseline.generate ~source:source.Discover.schema
           ~target:target.Discover.schema ~corrs)
  | Semantic -> ()

let run_match file threshold =
  let doc, source, target = load file in
  ignore doc;
  let proposals =
    Smg_matching.Matcher.propose ~threshold ~source:source.Discover.schema
      ~target:target.Discover.schema ()
  in
  List.iter
    (fun (r : Smg_matching.Matcher.match_result) ->
      Fmt.pr "%.2f  %a@." r.confidence Mapping.pp_corr r.corr)
    proposals

let run_show file =
  let doc = Smg_dsl.Parser.parse_file file in
  Fmt.pr "%a@." Smg_dsl.Printer.pp doc

let run_exchange file =
  let doc, source, target = load file in
  let corrs = doc.Ast.doc_corrs in
  if corrs = [] then begin
    Fmt.epr "error: the scenario declares no correspondences@.";
    exit 2
  end;
  let src_inst = Ast.instance_of doc source.Discover.schema in
  if Smg_relational.Instance.total_tuples src_inst = 0 then begin
    Fmt.epr "error: the scenario has no data blocks for source tables@.";
    exit 2
  end;
  (match Smg_relational.Instance.check_rics source.Discover.schema src_inst with
  | [] -> ()
  | violations ->
      Fmt.epr "error: source data violates %d referential constraint(s)@."
        (List.length violations);
      exit 2);
  match Discover.discover ~source ~target ~corrs () with
  | [] ->
      Fmt.epr "error: no mapping discovered@.";
      exit 1
  | best :: _ -> (
      Fmt.pr "Executing: %a@.@." Mapping.pp best;
      let tgds =
        if best.Mapping.outer then
          Mapping.outer_variants ~target:target.Discover.schema best
        else [ Mapping.to_tgd best ]
      in
      match
        Smg_cq.Chase.exchange ~source:source.Discover.schema
          ~target:target.Discover.schema ~mappings:tgds src_inst
      with
      | Smg_cq.Chase.Saturated out | Smg_cq.Chase.Bounded out ->
          Fmt.pr "Target instance:@.%a@." Smg_relational.Instance.pp out
      | Smg_cq.Chase.Failed msg ->
          Fmt.epr "error: chase failed: %s@." msg;
          exit 1)

let run_ddl file =
  let doc, source, target = load file in
  ignore doc;
  Fmt.pr "-- source schema@.%s@.@.-- target schema@.%s@."
    (Smg_relational.Sql_ddl.create_schema source.Discover.schema)
    (Smg_relational.Sql_ddl.create_schema target.Discover.schema)

let run_dot file which =
  let doc, source, target = load file in
  ignore doc;
  let side = match which with `Source -> source | `Target -> target in
  print_string
    (Smg_cm.Dot.of_cm_graph
       ~name:side.Discover.schema.Smg_relational.Schema.schema_name
       side.Discover.cmg)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let meth_arg =
  let meth_conv =
    Arg.enum [ ("semantic", Semantic); ("ric", Ric); ("both", Both) ]
  in
  Arg.(value & opt meth_conv Both & info [ "m"; "method" ] ~docv:"METHOD")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ])
let sql_arg = Arg.(value & flag & info [ "sql" ] ~doc:"Also print SQL renderings")

let which_arg =
  let side_conv = Arg.enum [ ("source", `Source); ("target", `Target) ] in
  Arg.(value & opt side_conv `Source & info [ "side" ] ~docv:"SIDE")

let threshold_arg =
  Arg.(value & opt float 0.55 & info [ "t"; "threshold" ] ~docv:"T")

let () =
  let discover_cmd =
    Cmd.v
      (Cmd.info "discover" ~doc:"Discover mapping candidates for a scenario")
      Term.(const run_discover $ file_arg $ meth_arg $ verbose_arg $ sql_arg)
  in
  let match_cmd =
    Cmd.v
      (Cmd.info "match" ~doc:"Propose column correspondences (name matcher)")
      Term.(const run_match $ file_arg $ threshold_arg)
  in
  let show_cmd =
    Cmd.v
      (Cmd.info "show" ~doc:"Parse and pretty-print a scenario file")
      Term.(const run_show $ file_arg)
  in
  let exchange_cmd =
    Cmd.v
      (Cmd.info "exchange"
         ~doc:
           "Discover the best mapping and execute it over the scenario's data \
            blocks")
      Term.(const run_exchange $ file_arg)
  in
  let ddl_cmd =
    Cmd.v
      (Cmd.info "ddl" ~doc:"Emit CREATE TABLE statements for both schemas")
      Term.(const run_ddl $ file_arg)
  in
  let dot_cmd =
    Cmd.v
      (Cmd.info "dot" ~doc:"Emit a GraphViz rendering of a side's CM graph")
      Term.(const run_dot $ file_arg $ which_arg)
  in
  let info =
    Cmd.info "mapdisc" ~version:"1.0"
      ~doc:"Semantic schema-mapping discovery (An et al., ICDE 2007)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ discover_cmd; match_cmd; show_cmd; exchange_cmd; ddl_cmd; dot_cmd ]))
