(* Regenerates the paper's evaluation artefacts (Table 1, Figures 6/7)
   from the built-in datasets.

   Usage:
     experiments            — everything
     experiments table1     — dataset characteristics + generation time
     experiments fig6       — average precision per domain
     experiments fig7       — average recall per domain
     experiments cases      — per-case breakdown *)

open Cmdliner

let results = lazy (Smg_eval.Experiments.run_all (Smg_eval.Datasets.all ()))

let table1 () = Fmt.pr "%a@." Smg_eval.Experiments.pp_table1 (Lazy.force results)
let fig6 () = Fmt.pr "%a@." Smg_eval.Experiments.pp_fig6 (Lazy.force results)
let fig7 () = Fmt.pr "%a@." Smg_eval.Experiments.pp_fig7 (Lazy.force results)

let ablation () =
  Fmt.pr "Over the seven benchmark domains:@.%a@." Smg_eval.Ablation.pp
    (Smg_eval.Ablation.run (Smg_eval.Datasets.all ()));
  Fmt.pr "@.Over the diagnostic micro-scenarios:@.%a@." Smg_eval.Ablation.pp
    (Smg_eval.Ablation.run_micro ())

let redundancy () =
  let rows =
    List.map
      (fun scen -> (scen, Smg_eval.Experiments.redundancy scen))
      (Smg_eval.Datasets.all ())
  in
  Fmt.pr "%a@." Smg_eval.Experiments.pp_redundancy rows

let witness () =
  List.iter
    (fun scen ->
      Fmt.pr "== %s@." scen.Smg_eval.Scenario.scen_name;
      List.iter
        (fun v -> Fmt.pr "  %a@." Smg_eval.Witness.pp_verdict v)
        (Smg_eval.Witness.check_scenario scen))
    (Smg_eval.Datasets.all ())

let cases () =
  List.iter
    (fun r -> Fmt.pr "%a@." Smg_eval.Experiments.pp_cases r)
    (Lazy.force results)

let all () =
  table1 ();
  Fmt.pr "@.";
  cases ();
  Fmt.pr "@.";
  fig6 ();
  Fmt.pr "@.";
  fig7 ();
  Fmt.pr "@.";
  redundancy ();
  Fmt.pr "@.";
  ablation ()

(* exchange-scale: the plan-based exchange engine vs the naive chase on
   the DBLP domain at increasing generated-source sizes; optionally
   records the measurements as BENCH_exchange.json. *)

let measure f =
  (* one warm-up-free shot for long runs; short runs take the best of
     several repeats — the minimum is the low-noise estimator when a
     scheduler slice or a GC pause can land mid-run (which the first,
     cache-cold shot absorbs as warm-up) *)
  let x, secs = Smg_exchange.Obs.time f in
  if secs >= 0.05 then (x, secs, 1)
  else begin
    let runs = min 50 (max 2 (int_of_float (0.1 /. max 1e-6 secs))) in
    let best = ref infinity in
    for _ = 1 to runs do
      let _, s = Smg_exchange.Obs.time f in
      if s < !best then best := s
    done;
    (x, !best, runs)
  end

let exchange_scale json smoke seed sizes =
  let module Scenario = Smg_eval.Scenario in
  let module Instance = Smg_relational.Instance in
  let module Obs = Smg_exchange.Obs in
  let scen =
    List.find
      (fun s -> s.Scenario.scen_name = "DBLP")
      (Smg_eval.Datasets.all ())
  in
  let source = scen.Scenario.source.Smg_core.Discover.schema in
  let target = scen.Scenario.target.Smg_core.Discover.schema in
  let mappings =
    List.concat_map
      (fun (case : Scenario.case) ->
        match
          Smg_eval.Experiments.run_method Smg_eval.Experiments.Semantic scen
            case
        with
        | [] -> []
        | best :: _ ->
            let best = Smg_cq.Mapping.rename case.Scenario.case_name best in
            if best.Smg_cq.Mapping.outer then
              Smg_cq.Mapping.outer_variants ~target best
            else [ Smg_cq.Mapping.to_tgd best ])
      scen.Scenario.cases
  in
  let sizes =
    match sizes with
    | Some s -> s
    | None -> if smoke then [ 2; 8 ] else [ 4; 16; 64; 256 ]
  in
  Fmt.pr
    "exchange-scale: DBLP, %d tgd(s), sizes (rows/table) %s, seed %d@.@."
    (List.length mappings)
    (String.concat "," (List.map string_of_int sizes))
    seed;
  Fmt.pr "%8s %8s | %12s %12s %12s | %8s@." "rows" "src" "chase ns"
    "engine ns" "laconic ns" "speedup";
  let rows =
    List.concat_map
      (fun rows_per_table ->
        let inst =
          Smg_eval.Witness.populate ~rows_per_table ~seed source
        in
        let src_n = Instance.total_tuples inst in
        let run_engine laconic () =
          match
            Smg_exchange.Engine.run ~laconic ~source ~target ~mappings inst
          with
          | Ok rep -> Instance.total_tuples rep.Smg_exchange.Engine.r_target
          | Error msg -> failwith ("engine: " ^ msg)
        in
        let run_chase () =
          match Smg_exchange.Naive.exchange ~source ~target ~mappings inst with
          | Smg_cq.Chase.Saturated out | Smg_cq.Chase.Bounded out ->
              Instance.total_tuples out
          | Smg_cq.Chase.Failed msg -> failwith ("chase: " ^ msg)
        in
        let c_out, c_secs, _ = measure run_chase in
        let e_out, e_secs, _ = measure (run_engine false) in
        let l_out, l_secs, _ = measure (run_engine true) in
        Fmt.pr "%8d %8d | %12.0f %12.0f %12.0f | %7.1fx@." rows_per_table
          src_n (1e9 *. c_secs) (1e9 *. e_secs) (1e9 *. l_secs)
          (c_secs /. e_secs);
        let row name out secs =
          {
            Obs.br_name = name;
            br_size = src_n;
            br_ns_per_run = 1e9 *. secs;
            br_tuples_per_s = float_of_int out /. secs;
          }
        in
        [
          row "chase/dblp" c_out c_secs;
          row "engine/dblp" e_out e_secs;
          row "engine-laconic/dblp" l_out l_secs;
        ])
      sizes
  in
  if json then begin
    let path = "BENCH_exchange.json" in
    Obs.write_bench_json ~path rows;
    Fmt.pr "@.wrote %s (%d rows)@." path (List.length rows)
  end

(* parallel-scale: the discovery and exchange workloads under a domain
   pool at increasing domain counts. The discovery speedup is the
   wall-clock ratio against the first domain count in the list
   (normally 1). The two exchange speedups are measured against the
   frozen pre-interning boxed engine (Refengine) run sequentially once
   — so they capture the interned columnar substrate's gain plus any
   multicore gain, and stay meaningful on a single-core container
   (where pool fan-out alone cannot win). Output invariance across
   domain and shard counts is asserted on every run: the ranked
   discovery fingerprint must be identical, the exchange cardinality
   equal, and each exchange row's cardinality must match the boxed
   baseline's. Optionally records BENCH_parallel.json, and
   [--min-gen-speedup] turns the generated-fixture speedup at the
   largest domain count into a CI gate. *)

let write_parallel_json ~path rows =
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i (name, domains, shards, ns, speedup) ->
      if i > 0 then output_string oc ",\n";
      Printf.fprintf oc
        "  {\"name\": \"%s\", \"domains\": %d, \"shards\": %d, \
         \"ns_per_run\": %.0f, \"speedup\": %.3f}"
        name domains shards ns speedup)
    rows;
  output_string oc "\n]\n";
  close_out oc

let parallel_scale json smoke seed domains rows gen_tuples shards
    min_gen_speedup =
  let module Scenario = Smg_eval.Scenario in
  let module Instance = Smg_relational.Instance in
  let module Pool = Smg_parallel.Pool in
  let module Gen = Smg_generate.Gen in
  let module Gparams = Smg_generate.Params in
  let domain_counts =
    match domains with
    | Some l -> l
    | None -> if smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ]
  in
  let rows_per_table =
    match rows with Some r -> r | None -> if smoke then 16 else 256
  in
  let gen_tuples =
    match gen_tuples with Some n -> n | None -> if smoke then 2_000 else 100_000
  in
  let find name =
    List.find
      (fun s -> s.Scenario.scen_name = name)
      (Smg_eval.Datasets.all ())
  in
  let mondial = find "Mondial" and dblp = find "DBLP" in
  (* discovery workload: every Mondial case, per-CSG fan-out *)
  let discover_once pool =
    List.concat_map
      (fun case ->
        (Smg_eval.Experiments.run_semantic_bounded ?pool mondial case)
          .Smg_core.Discover.o_mappings)
      mondial.Scenario.cases
  in
  (* exchange workload: DBLP's discovered tgds over a generated source *)
  let source = dblp.Scenario.source.Smg_core.Discover.schema in
  let target = dblp.Scenario.target.Smg_core.Discover.schema in
  let mappings =
    List.concat_map
      (fun (case : Scenario.case) ->
        match
          Smg_eval.Experiments.run_method Smg_eval.Experiments.Semantic dblp
            case
        with
        | [] -> []
        | best :: _ ->
            let best = Smg_cq.Mapping.rename case.Scenario.case_name best in
            if best.Smg_cq.Mapping.outer then
              Smg_cq.Mapping.outer_variants ~target best
            else [ Smg_cq.Mapping.to_tgd best ])
      dblp.Scenario.cases
  in
  let inst = Smg_eval.Witness.populate ~rows_per_table ~seed source in
  let src_n = Instance.total_tuples inst in
  let exchange_once pool nshards () =
    match
      Smg_exchange.Engine.run ?pool ~shards:nshards ~source ~target ~mappings
        inst
    with
    | Ok rep -> Instance.total_tuples rep.Smg_exchange.Engine.r_target
    | Error msg -> failwith ("engine: " ^ msg)
  in
  let boxed_dblp () =
    match Smg_exchange.Refengine.run ~source ~target ~mappings inst with
    | Ok rep -> Instance.total_tuples rep.Smg_exchange.Refengine.r_target
    | Error msg -> failwith ("boxed engine: " ^ msg)
  in
  (* the large-fixture workload the hand-written domains cannot supply:
     a generated scenario (lib/generate) whose witness instance scales
     to whatever --gen-tuples asks for *)
  let gen_p =
    Gparams.clamp
      {
        Gparams.seed = 7;
        isa_depth = 2;
        n_roots = 3;
        reify = 2;
        partof = 1;
        attrs_per_class = 2;
        corr_density = 0.8;
        scale = gen_tuples;
      }
  in
  let g = Gen.build gen_p in
  let g_source = g.Gen.g_source.Smg_core.Discover.schema in
  let g_target = g.Gen.g_target.Smg_core.Discover.schema in
  let g_tgds =
    match
      Smg_core.Discover.discover ~source:g.Gen.g_source ~target:g.Gen.g_target
        ~corrs:g.Gen.g_corrs ()
    with
    | [] -> failwith "no mapping discovered on the generated fixture"
    | best :: _ ->
        if best.Smg_cq.Mapping.outer then
          Smg_cq.Mapping.outer_variants ~target:g_target best
        else [ Smg_cq.Mapping.to_tgd best ]
  in
  let g_inst = Gen.source_instance g in
  let g_n = Instance.total_tuples g_inst in
  let gen_once pool nshards () =
    match
      Smg_exchange.Engine.run ?pool ~shards:nshards ~source:g_source
        ~target:g_target ~mappings:g_tgds g_inst
    with
    | Ok rep -> Instance.total_tuples rep.Smg_exchange.Engine.r_target
    | Error msg -> failwith ("generated engine: " ^ msg)
  in
  let boxed_gen () =
    match
      Smg_exchange.Refengine.run ~source:g_source ~target:g_target
        ~mappings:g_tgds g_inst
    with
    | Ok rep -> Instance.total_tuples rep.Smg_exchange.Refengine.r_target
    | Error msg -> failwith ("boxed generated engine: " ^ msg)
  in
  Fmt.pr
    "parallel-scale: discover/mondial (%d case(s)), engine/dblp (%d source \
     tuple(s), seed %d), engine/generated (%s: %d source tuple(s)); domains \
     %s; shards %s@.@."
    (List.length mondial.Scenario.cases)
    src_n seed (Gparams.label gen_p) g_n
    (String.concat "," (List.map string_of_int domain_counts))
    (match shards with Some s -> string_of_int s | None -> "= domains");
  (* the fixed sequential baselines: the frozen boxed engine, once *)
  let boxed_e_out, boxed_e_secs, _ = measure boxed_dblp in
  let boxed_g_out, boxed_g_secs, _ = measure boxed_gen in
  Fmt.pr "boxed baseline: engine/dblp %.0f ns, engine/generated %.0f ns@.@."
    (1e9 *. boxed_e_secs) (1e9 *. boxed_g_secs);
  Fmt.pr "%8s %7s | %13s %8s | %13s %8s | %13s %8s@." "domains" "shards"
    "discover ns" "speedup" "exchange ns" "speedup" "generated ns" "speedup";
  let fingerprint ms =
    List.map
      (fun (m : Smg_cq.Mapping.t) ->
        (m.Smg_cq.Mapping.m_name, m.Smg_cq.Mapping.score))
      ms
  in
  let base_d = ref None in
  let ref_disc = ref None in
  let last_gen_sp = ref infinity in
  let gen_tag = Printf.sprintf "engine/generated_%dk" (g_n / 1000) in
  let bench_rows =
    List.concat_map
      (fun n ->
        let nshards = match shards with Some s -> s | None -> n in
        let with_pool f =
          if n <= 1 then f None
          else Pool.with_pool ~domains:n (fun p -> f (Some p))
        in
        let (disc, d_secs, _), (out, e_secs, _), (gout, g_secs, _) =
          with_pool (fun pool ->
              ( measure (fun () -> discover_once pool),
                measure (exchange_once pool nshards),
                measure (gen_once pool nshards) ))
        in
        (match !ref_disc with
        | None -> ref_disc := Some (fingerprint disc)
        | Some fp ->
            if fp <> fingerprint disc then
              failwith "discovery output varies with the domain count");
        if out <> boxed_e_out then
          failwith
            (Printf.sprintf
               "exchange cardinality diverges from the boxed baseline at %d \
                domain(s), %d shard(s): %d vs %d"
               n nshards out boxed_e_out);
        if gout <> boxed_g_out then
          failwith
            (Printf.sprintf
               "generated-fixture cardinality diverges from the boxed \
                baseline at %d domain(s), %d shard(s): %d vs %d"
               n nshards gout boxed_g_out);
        let d_sp =
          match !base_d with
          | None ->
              base_d := Some d_secs;
              1.0
          | Some b -> b /. d_secs
        in
        let e_sp = boxed_e_secs /. e_secs in
        let g_sp = boxed_g_secs /. g_secs in
        last_gen_sp := g_sp;
        Fmt.pr "%8d %7d | %13.0f %7.2fx | %13.0f %7.2fx | %13.0f %7.2fx@." n
          nshards (1e9 *. d_secs) d_sp (1e9 *. e_secs) e_sp (1e9 *. g_secs)
          g_sp;
        [
          ("discover/mondial", n, nshards, 1e9 *. d_secs, d_sp);
          ("engine/dblp", n, nshards, 1e9 *. e_secs, e_sp);
          (gen_tag, n, nshards, 1e9 *. g_secs, g_sp);
        ])
      domain_counts
  in
  if json then begin
    let path = "BENCH_parallel.json" in
    write_parallel_json ~path bench_rows;
    Fmt.pr "@.wrote %s (%d rows)@." path (List.length bench_rows)
  end;
  match min_gen_speedup with
  | Some floor when !last_gen_sp < floor ->
      Fmt.epr
        "parallel-scale: generated-fixture speedup %.2fx at the largest \
         domain count is below the required %.2fx@."
        !last_gen_sp floor;
      exit 1
  | _ -> ()


(* incremental: delta-chase maintenance (lib/delta) vs a full re-chase
   on the generated large fixture, across batch sizes from 0.1% to 50%
   of the source. Each fraction applies one batch (half deletes of
   existing tuples, half fresh inserts) through Maintain.apply, times
   it against Engine.execute over the same post-batch source with the
   same compiled plans, asserts the maintained target is homomorphically
   equivalent to the rebuild, then rolls the batch back with its inverse
   so fractions are independent (the rollback is digest-checked). The
   rebuild's rendered document is also asserted byte-identical at 1 and
   4 domains. Optionally records BENCH_incremental.json. *)

let write_incremental_json ~path rows =
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i (frac, ops, delta_ns, rebuild_ns, speedup, equiv) ->
      if i > 0 then output_string oc ",\n";
      Printf.fprintf oc
        "  {\"name\": \"incremental/generated\", \"fraction\": %.4f, \
         \"batch_ops\": %d, \"delta_ns\": %.0f, \"rebuild_ns\": %.0f, \
         \"speedup\": %.2f, \"hom_equivalent\": %b}"
        frac ops delta_ns rebuild_ns speedup equiv)
    rows;
  output_string oc "\n]\n";
  close_out oc

let incremental json smoke seed gen_tuples =
  let module Gen = Smg_generate.Gen in
  let module Gparams = Smg_generate.Params in
  let module Instance = Smg_relational.Instance in
  let module Index = Smg_relational.Index in
  let module Value = Smg_relational.Value in
  let module Schema = Smg_relational.Schema in
  let module Maintain = Smg_delta.Maintain in
  let module Batch = Smg_delta.Batch in
  let module Engine = Smg_exchange.Engine in
  let module Pool = Smg_parallel.Pool in
  let gen_tuples =
    match gen_tuples with Some n -> n | None -> if smoke then 2_000 else 100_000
  in
  let gen_p =
    Gparams.clamp
      {
        Gparams.seed;
        isa_depth = 2;
        n_roots = 3;
        reify = 2;
        partof = 1;
        attrs_per_class = 2;
        corr_density = 0.8;
        scale = gen_tuples;
      }
  in
  let g = Gen.build gen_p in
  let source = g.Gen.g_source.Smg_core.Discover.schema in
  let target = g.Gen.g_target.Smg_core.Discover.schema in
  let mappings =
    match
      Smg_core.Discover.discover ~source:g.Gen.g_source ~target:g.Gen.g_target
        ~corrs:g.Gen.g_corrs ()
    with
    | [] -> failwith "no mapping discovered on the generated fixture"
    | best :: _ ->
        if best.Smg_cq.Mapping.outer then
          Smg_cq.Mapping.outer_variants ~target best
        else [ Smg_cq.Mapping.to_tgd best ]
  in
  let inst = Gen.source_instance g in
  let src_n = Instance.total_tuples inst in
  let compiled =
    match
      Maintain.prepare
        ~card:(fun n -> Instance.cardinality inst n)
        ~source ~target ~mappings ()
    with
    | Ok c -> c
    | Error m -> failwith ("prepare: " ^ m)
  in
  (* one compiled plan serves both paths; its bulk execution must be a
     deterministic function of the source, domain count included *)
  let rendered domains =
    Pool.with_pool ~domains (fun pool ->
        match Engine.execute ~pool compiled inst with
        | Engine.Complete r -> Smg_serve.Render.exchange_json ~head:[] ~laconic:false r
        | _ -> failwith "bulk execution did not complete")
  in
  if rendered 1 <> rendered 4 then
    failwith "rebuild document differs between 1 and 4 domains";
  let source_digest i =
    Digest.to_hex
      (Digest.string
         (String.concat "\x00"
            (List.map
               (fun name ->
                 match Instance.relation i name with
                 | None -> name
                 | Some r ->
                     name ^ ":"
                     ^ String.concat "\x01"
                         (List.sort String.compare
                            (List.map Index.tuple_key r.Instance.tuples)))
               (List.sort String.compare (Instance.names i)))))
  in
  let base_digest = source_digest inst in
  let st =
    match Maintain.init compiled inst with
    | Ok st -> st
    | Error m -> failwith ("init: " ^ m)
  in
  let fresh_row =
    (* synthesized inserts: values no generated witness produces, typed
       per column, distinct per (fraction, table, row) *)
    let counter = ref 0 in
    fun (t : Schema.table) ->
      incr counter;
      let i = !counter in
      Array.of_list
        (List.mapi
           (fun j (c : Schema.column) ->
             match c.Schema.col_type with
             | Schema.TString -> Value.VString (Printf.sprintf "zz_%d_%d" i j)
             | Schema.TInt -> Value.VInt (1_000_000 + (i * 16) + j)
             | Schema.TFloat -> Value.VFloat (1e6 +. float_of_int ((i * 16) + j))
             | Schema.TBool -> Value.VBool (i mod 2 = 0))
           t.Schema.columns)
  in
  let fractions =
    if smoke then [ 0.01; 0.1; 0.5 ]
    else [ 0.001; 0.005; 0.01; 0.05; 0.1; 0.5 ]
  in
  Fmt.pr
    "incremental: generated fixture %s (%d source tuple(s), %d tgd(s)), \
     fractions %s@.@."
    (Gparams.label gen_p) src_n (List.length mappings)
    (String.concat "," (List.map (Printf.sprintf "%.3f") fractions));
  Fmt.pr "%9s %8s | %13s %13s | %8s | %s@." "fraction" "ops" "delta ns"
    "rebuild ns" "speedup" "equiv";
  let failures = ref [] in
  let rows =
    List.map
      (fun frac ->
        let step = max 2 (int_of_float (1.0 /. frac)) in
        let cur = Maintain.source st in
        let deletes =
          List.concat_map
            (fun name ->
              match Instance.relation cur name with
              | None -> []
              | Some r ->
                  List.filteri (fun i _ -> i mod step = 0) r.Instance.tuples
                  |> List.map (fun tup -> (name, tup)))
            (List.sort String.compare (Instance.names cur))
        in
        let inserts =
          List.map
            (fun (name, _) ->
              (name, fresh_row (Schema.find_table_exn source name)))
            deletes
        in
        let batch =
          List.map (fun (n, t) -> Batch.Delete (n, t)) deletes
          @ List.map (fun (n, t) -> Batch.Insert (n, t)) inserts
        in
        let ops = List.length batch in
        let (st', c), delta_secs =
          Smg_exchange.Obs.time (fun () ->
              match Maintain.apply st batch with
              | Ok r -> r
              | Error m -> failwith ("apply: " ^ m))
        in
        ignore c;
        if Sys.getenv_opt "SMG_INCR_DEBUG" <> None then
          Fmt.pr
            "  [debug] fired=%d fadd=%d fret=%d merges=%d erebuild=%d \
             frebuild=%d@."
            c.Maintain.mc_triggers_fired c.Maintain.mc_facts_added
            c.Maintain.mc_facts_retracted c.Maintain.mc_egd_merges
            c.Maintain.mc_egd_rebuilds c.Maintain.mc_full_rebuilds;
        let final = Maintain.source st' in
        let rep, rebuild_secs =
          Smg_exchange.Obs.time (fun () ->
              match Engine.execute compiled final with
              | Engine.Complete r -> r
              | _ -> failwith "rebuild did not complete")
        in
        let equiv =
          Smg_verify.Equiv.equivalent (Maintain.target st')
            rep.Engine.r_target
        in
        if not equiv then
          failures :=
            Printf.sprintf "fraction %.4f: maintained target not ≡hom" frac
            :: !failures;
        let speedup = rebuild_secs /. max 1e-9 delta_secs in
        if (not smoke) && frac <= 0.01 && speedup < 5.0 then
          failures :=
            Printf.sprintf
              "fraction %.4f: delta-maintain only %.1fx over a full rebuild \
               (need >= 5x)"
              frac speedup
            :: !failures;
        (* roll back so the next fraction starts from the base state *)
        let inverse =
          List.map (fun (n, t) -> Batch.Delete (n, t)) inserts
          @ List.map (fun (n, t) -> Batch.Insert (n, t)) deletes
        in
        (match Maintain.apply st' inverse with
        | Ok _ -> ()
        | Error m -> failwith ("rollback: " ^ m));
        if source_digest (Maintain.source st') <> base_digest then
          failwith
            (Printf.sprintf "fraction %.4f: rollback did not restore the base \
                             source" frac);
        Fmt.pr "%9.3f %8d | %13.0f %13.0f | %7.1fx | %b@." frac ops
          (1e9 *. delta_secs) (1e9 *. rebuild_secs) speedup equiv;
        (frac, ops, 1e9 *. delta_secs, 1e9 *. rebuild_secs, speedup, equiv))
      fractions
  in
  if json then begin
    let path = "BENCH_incremental.json" in
    write_incremental_json ~path rows;
    Fmt.pr "@.wrote %s (%d rows)@." path (List.length rows)
  end;
  match !failures with
  | [] -> ()
  | fs ->
      List.iter (fun m -> Fmt.epr "error: %s@." m) (List.rev fs);
      exit 1

(* generate: the stress matrix over lib/generate's parameter grid —
   ISA depth × correspondence density × witness scale, fixed companion
   shape (3 roots, 2 reified relationships, a partOf chain). Each cell
   synthesizes a scenario, runs semantic discovery (raw and deduped
   against the RIC baseline) on the focus case, and pushes the witness
   instance through the exchange engine; quality is the best
   candidate's correspondence coverage. Optionally records
   BENCH_generate.json. *)

let generate_matrix json smoke seed =
  let module Gen = Smg_generate.Gen in
  let module Gparams = Smg_generate.Params in
  let module Instance = Smg_relational.Instance in
  let module Mapping = Smg_cq.Mapping in
  let module Discover = Smg_core.Discover in
  let isa_depths = if smoke then [ 0; 2 ] else [ 0; 1; 2 ] in
  let densities = if smoke then [ 1.0 ] else [ 0.5; 0.8; 1.0 ] in
  let scales = if smoke then [ 100 ] else [ 1_000; 10_000; 100_000 ] in
  Fmt.pr
    "generate: isa depth %s × corr density %s × scale %s, seed %d (roots 3, \
     reify 2, partof 1, attrs 2)@.@."
    (String.concat "," (List.map string_of_int isa_depths))
    (String.concat "," (List.map (Printf.sprintf "%.1f") densities))
    (String.concat "," (List.map string_of_int scales))
    seed;
  Fmt.pr "%-22s | %5s %4s %4s | %4s %4s %5s | %8s %8s | %6s | %9s %9s@."
    "cell" "cases" "sem" "ric" "in" "out" "cover" "disc ns" "dedup ns" "src"
    "exch ns" "tgt";
  let cells =
    List.concat_map
      (fun isa ->
        List.concat_map
          (fun density ->
            List.map (fun scale -> (isa, density, scale)) scales)
          densities)
      isa_depths
  in
  let rows =
    List.concat_map
      (fun (isa, density, scale) ->
        let p =
          Gparams.clamp
            {
              Gparams.seed;
              isa_depth = isa;
              n_roots = 3;
              reify = 2;
              partof = 1;
              attrs_per_class = 2;
              corr_density = density;
              scale;
            }
        in
        let g = Gen.build p in
        let source = g.Gen.g_source and target = g.Gen.g_target in
        (* one discovery run per target-table case, like the built-in
           domains' case lists; the cell aggregates over them *)
        let per_case, d_secs, _ =
          measure (fun () ->
              List.map
                (fun (tbl, corrs) ->
                  (tbl, corrs, Discover.discover ~source ~target ~corrs ()))
                g.Gen.g_cases)
        in
        let n_corrs =
          List.fold_left (fun a (_, cs, _) -> a + List.length cs) 0 per_case
        in
        let sem = List.concat_map (fun (_, _, ms) -> ms) per_case in
        let ric =
          List.concat_map
            (fun (_, corrs, _) ->
              Smg_ric.Baseline.generate
                ~source:source.Smg_core.Discover.schema
                ~target:target.Smg_core.Discover.schema ~corrs)
            per_case
        in
        let labelled =
          List.mapi
            (fun i (m : Mapping.t) ->
              Mapping.rename (Printf.sprintf "%s#%d" m.Mapping.m_name (i + 1)) m)
            (sem @ ric)
        in
        let report, dd_secs, _ =
          measure (fun () ->
              Smg_verify.Mapverify.dedup
                ~source:source.Smg_core.Discover.schema
                ~target:target.Smg_core.Discover.schema labelled)
        in
        (* quality: per solved case, the best candidate's correspondence
           coverage, averaged over the cases that produced a candidate *)
        let coverage =
          let covs =
            List.filter_map
              (fun (_, corrs, ms) ->
                match ms with
                | [] -> None
                | (best : Mapping.t) :: _ ->
                    Some
                      (float_of_int (List.length best.Mapping.covered)
                      /. float_of_int (max 1 (List.length corrs))))
              per_case
          in
          match covs with
          | [] -> 0.0
          | _ ->
              List.fold_left ( +. ) 0.0 covs /. float_of_int (List.length covs)
        in
        let solved =
          List.length (List.filter (fun (_, _, ms) -> ms <> []) per_case)
        in
        let inst = Gen.source_instance g in
        let src_n = Instance.total_tuples inst in
        (* every solved case's best mapping, executed together — the
           construction mapdisc serve uses for builtin scenarios *)
        let tgds =
          List.concat_map
            (fun (tbl, _, ms) ->
              match ms with
              | [] -> []
              | best :: _ ->
                  let best = Mapping.rename tbl best in
                  if best.Mapping.outer then
                    Mapping.outer_variants
                      ~target:target.Smg_core.Discover.schema best
                  else [ Mapping.to_tgd best ])
            per_case
        in
        let exch =
          if tgds = [] then None
          else
            match
              measure (fun () ->
                  match
                    Smg_exchange.Engine.run
                      ~source:source.Smg_core.Discover.schema
                      ~target:target.Smg_core.Discover.schema ~mappings:tgds
                      inst
                  with
                  | Ok rep ->
                      Some
                        (Instance.total_tuples rep.Smg_exchange.Engine.r_target)
                  | Error _ -> None)
            with
            | Some out, secs, _ -> Some (out, secs)
            | None, _, _ -> None
        in
        let label = Printf.sprintf "i%d_c%02d_n%d" isa
            (int_of_float (density *. 100.)) scale in
        Fmt.pr
          "%-22s | %2d/%-2d %4d %4d | %4d %4d %4.0f%% | %8.0f %8.0f | %6d | \
           %9s %9s@."
          label solved (List.length per_case) (List.length sem)
          (List.length ric) report.Smg_verify.Mapverify.rp_in
          (List.length report.Smg_verify.Mapverify.rp_kept)
          (100. *. coverage) (1e9 *. d_secs) (1e9 *. dd_secs) src_n
          (match exch with
           | Some (_, s) -> Printf.sprintf "%.0f" (1e9 *. s)
           | None -> "-")
          (match exch with Some (o, _) -> string_of_int o | None -> "-");
        [
          Printf.sprintf
            "  {\"name\": \"generate/%s\", \"seed\": %d, \"isa_depth\": %d, \
             \"corr_density\": %.2f, \"scale\": %d,\n   \"source_tuples\": \
             %d, \"cases\": %d, \"solved_cases\": %d, \"corrs\": %d, \
             \"semantic_candidates\": %d, \"ric_candidates\": %d,\n   \
             \"dedup_in\": %d, \"dedup_kept\": %d, \"coverage\": %.3f,\n   \
             \"discover_ns\": %.0f, \"dedup_ns\": %.0f, \"exchange_ns\": %s, \
             \"target_tuples\": %s}"
            label seed isa density scale src_n (List.length per_case) solved
            n_corrs (List.length sem) (List.length ric)
            report.Smg_verify.Mapverify.rp_in
            (List.length report.Smg_verify.Mapverify.rp_kept)
            coverage (1e9 *. d_secs) (1e9 *. dd_secs)
            (match exch with
             | Some (_, s) -> Printf.sprintf "%.0f" (1e9 *. s)
             | None -> "null")
            (match exch with
             | Some (o, _) -> string_of_int o
             | None -> "null");
        ])
      cells
  in
  if json then begin
    let path = "BENCH_generate.json" in
    let oc = open_out path in
    output_string oc "[\n";
    output_string oc (String.concat ",\n" rows);
    output_string oc "\n]\n";
    close_out oc;
    Fmt.pr "@.wrote %s (%d cells)@." path (List.length rows)
  end

(* compose: two-hop round-trip chains (each domain's discovered mapping
   followed by its quasi-inverse into a primed source copy), composed
   into one mapping; sequential two-hop exchange vs composed one-shot,
   with the hom-equivalence verdict. Optionally records BENCH_compose.json. *)

let compose_report json smoke seed size =
  let module Scenario = Smg_eval.Scenario in
  let module Instance = Smg_relational.Instance in
  let module Obs = Smg_exchange.Obs in
  let module Compose = Smg_compose.Compose in
  let module Invert = Smg_compose.Invert in
  let module Pipeline = Smg_compose.Pipeline in
  let rows_per_table = if smoke then 2 else size in
  Fmt.pr
    "compose: round-trip chains (discovered mapping ; quasi-inverse), %d \
     rows/table, seed %d@.@."
    rows_per_table seed;
  Fmt.pr "%-8s | %7s %5s %8s %7s | %12s %12s %7s | %s@." "domain" "clauses"
    "plain" "residual" "dropped" "seq ns" "composed ns" "speedup" "equiv";
  let bench_rows =
    List.concat_map
      (fun (scen : Scenario.t) ->
        let source = scen.Scenario.source.Smg_core.Discover.schema in
        let target = scen.Scenario.target.Smg_core.Discover.schema in
        let m12 =
          List.concat_map
            (fun (case : Scenario.case) ->
              match
                Smg_eval.Experiments.run_method Smg_eval.Experiments.Semantic
                  scen case
              with
              | [] -> []
              | best :: _ ->
                  let best =
                    Smg_cq.Mapping.rename case.Scenario.case_name best
                  in
                  if best.Smg_cq.Mapping.outer then
                    Smg_cq.Mapping.outer_variants ~target best
                  else [ Smg_cq.Mapping.to_tgd best ])
            scen.Scenario.cases
        in
        if m12 = [] then begin
          Fmt.pr "%-8s | no mapping discovered, skipped@."
            scen.Scenario.scen_name;
          []
        end
        else begin
          let primed = Invert.prime_schema ~suffix:"_rt" source in
          let hops =
            [
              { Pipeline.h_source = source; h_target = target; h_tgds = m12 };
              {
                Pipeline.h_source = target;
                h_target = primed;
                h_tgds = Invert.quasi_inverse ~prime:"_rt" m12;
              };
            ]
          in
          let r = Pipeline.compose_chain ~max_clauses:1024 hops in
          let inst = Smg_eval.Witness.populate ~rows_per_table ~seed source in
          let src_n = Instance.total_tuples inst in
          let seq () =
            match Pipeline.sequential hops inst with
            | Ok out -> Instance.total_tuples out
            | Error _ -> failwith "sequential leg failed"
          in
          let comp () =
            match
              Pipeline.one_shot ~source ~target:primed ~exec:r.Compose.c_exec
                inst
            with
            | Ok out -> Instance.total_tuples out
            | Error _ -> failwith "composed leg failed"
          in
          let equiv =
            match Pipeline.verify hops ~exec:r.Compose.c_exec inst with
            | Ok vd -> vd.Pipeline.vd_equiv
            | Error _ -> false
          in
          let s_out, s_secs, _ = measure seq in
          let c_out, c_secs, _ = measure comp in
          Fmt.pr "%-8s | %7d %5d %8d %7d | %12.0f %12.0f %6.1fx | %b@."
            scen.Scenario.scen_name
            (List.length r.Compose.c_clauses)
            (List.length r.Compose.c_plain)
            (List.length r.Compose.c_residual)
            r.Compose.c_dropped (1e9 *. s_secs) (1e9 *. c_secs)
            (s_secs /. c_secs) equiv;
          let row name out secs =
            {
              Obs.br_name = name;
              br_size = src_n;
              br_ns_per_run = 1e9 *. secs;
              br_tuples_per_s = float_of_int out /. secs;
            }
          in
          let tag = String.lowercase_ascii scen.Scenario.scen_name in
          [ row ("sequential/" ^ tag) s_out s_secs;
            row ("composed/" ^ tag) c_out c_secs ]
        end)
      (Smg_eval.Datasets.all ())
  in
  if json then begin
    let path = "BENCH_compose.json" in
    Obs.write_bench_json ~path bench_rows;
    Fmt.pr "@.wrote %s (%d rows)@." path (List.length bench_rows)
  end

(* serve-load: the HTTP service under concurrent client load, in one
   process — the server runs in its own domain (with its own handler
   pool) on an ephemeral port, client domains drive it over loopback
   sockets. Measures the cold (first-request) latency per scenario
   against the warm (plan-cache hit) latency distribution, and the
   sustained warm throughput; optionally records BENCH_serve.json. *)

let find_substring hay needle from =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  if nn = 0 then Some from else go from

let http_request ~port meth path body =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf
          "%s %s HTTP/1.1\r\nHost: localhost\r\nContent-Length: %d\r\n\
           Connection: close\r\n\r\n%s"
          meth path (String.length body) body
      in
      let n = String.length req in
      let off = ref 0 in
      while !off < n do
        off := !off + Unix.write_substring fd req !off (n - !off)
      done;
      let buf = Buffer.create 8192 and chunk = Bytes.create 8192 in
      let rec drain () =
        match Unix.read fd chunk 0 8192 with
        | 0 -> ()
        | k ->
            Buffer.add_subbytes buf chunk 0 k;
            drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      in
      drain ();
      let raw = Buffer.contents buf in
      let status =
        try int_of_string (String.sub raw 9 3) with _ -> failwith "bad status"
      in
      let body =
        match find_substring raw "\r\n\r\n" 0 with
        | Some i -> String.sub raw (i + 4) (String.length raw - i - 4)
        | None -> ""
      in
      (status, body))

let percentile xs q =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let xs = Array.copy xs in
    Array.sort compare xs;
    xs.(min (n - 1) (max 0 (int_of_float (ceil (q *. float_of_int n)) - 1)))
  end

let serve_load json smoke domains clients =
  let cfg =
    {
      Smg_serve.Server.default_config with
      port = 0;
      domains;
      max_inflight = 128;
    }
  in
  let srv = Smg_serve.Server.create cfg in
  let server_domain =
    Domain.spawn (fun () -> ignore (Smg_serve.Server.run srv))
  in
  let port = Smg_serve.Server.port srv in
  let scens =
    if smoke then [ "dblp" ]
    else [ "3sdb"; "amalgam"; "dblp"; "hotel"; "mondial"; "network"; "ut" ]
  in
  let warm_iters = if smoke then 8 else 30 in
  (* small instances: the point of the measurement is the cached
     parse/discover/compile work a warm request skips, so per-request
     chase execution must not drown it *)
  let size = 64 in
  let path scen =
    Printf.sprintf "/scenarios/%s/exchange?size=%d" scen size
  in
  let disc_path scen = Printf.sprintf "/scenarios/%s/discover" scen in
  let timed_post p =
    let t0 = Unix.gettimeofday () in
    let status, _ = http_request ~port "POST" p "" in
    let dt = Unix.gettimeofday () -. t0 in
    if status <> 200 then failwith (Printf.sprintf "%s -> %d" p status);
    dt
  in
  Fmt.pr
    "serve-load: port %d, %d server domain(s), %d client(s), %d scenario(s), \
     size %d@.@."
    port domains clients (List.length scens) size;
  Fmt.pr "%10s %9s | %9s %9s %9s | %7s@." "scenario" "endpoint" "cold ms"
    "p50 ms" "p95 ms" "ratio";
  (* cold then warm, per scenario, single client: the cold request pays
     parse + discovery + witness generation + plan compilation, warm
     ones hit the caches. Discover is served entirely from the cache
     when warm; exchange re-executes the chase per request over cached
     plans, so its ratio floors at the execution cost. *)
  let measure scen endpoint p =
    let cold = timed_post p in
    let lats = Array.init warm_iters (fun _ -> timed_post p) in
    let p50 = percentile lats 0.50 and p95 = percentile lats 0.95 in
    let ratio = cold /. max 1e-9 p50 in
    Fmt.pr "%10s %9s | %9.2f %9.2f %9.2f | %6.1fx@." scen endpoint
      (1000. *. cold) (1000. *. p50) (1000. *. p95) ratio;
    (cold, p50, p95, ratio)
  in
  let per_scen =
    List.map
      (fun scen ->
        let d = measure scen "discover" (disc_path scen) in
        let e = measure scen "exchange" (path scen) in
        let cold_d, p50_d, _, _ = d and cold_e, p50_e, _, _ = e in
        let combined = (cold_d +. cold_e) /. max 1e-9 (p50_d +. p50_e) in
        Fmt.pr "%10s %9s | %29s | %6.1fx@." "" "combined" "" combined;
        (scen, d, e, combined))
      scens
  in
  (* sustained warm throughput: [clients] domains hammer the cached
     scenarios concurrently *)
  let reqs_per_client = if smoke then 10 else 40 in
  let scen_arr = Array.of_list scens in
  let t0 = Unix.gettimeofday () in
  let workers =
    List.init clients (fun c ->
        Domain.spawn (fun () ->
            for i = 0 to reqs_per_client - 1 do
              let scen = scen_arr.((c + i) mod Array.length scen_arr) in
              ignore (timed_post (path scen))
            done))
  in
  List.iter Domain.join workers;
  let wall = Unix.gettimeofday () -. t0 in
  let total = clients * reqs_per_client in
  let rps = float_of_int total /. wall in
  Fmt.pr "@.throughput: %d request(s) over %d client(s) in %.2f s = %.1f \
          req/s@."
    total clients wall rps;
  (* a final metrics scrape doubles as a corruption check: the counters
     must add up to exactly what we sent *)
  let status, metrics_body = http_request ~port "GET" "/metrics" "" in
  if status <> 200 then failwith "metrics scrape failed";
  let counter endpoint =
    (* the endpoint's request counter, scraped textually *)
    let key = Printf.sprintf "\"%s\": {\"requests\": " endpoint in
    match find_substring metrics_body key 0 with
    | None -> -1
    | Some i ->
        let j = ref (i + String.length key) in
        let k = ref !j in
        while
          !k < String.length metrics_body
          && metrics_body.[!k] >= '0'
          && metrics_body.[!k] <= '9'
        do
          incr k
        done;
        if !k > !j then int_of_string (String.sub metrics_body !j (!k - !j))
        else -1
  in
  let check endpoint expected =
    let got = counter endpoint in
    if got <> expected then
      failwith
        (Printf.sprintf "metrics corrupted: %d %s request(s) recorded, %d sent"
           got endpoint expected);
    Fmt.pr "metrics: %d %s request(s) recorded (expected %d)@." got endpoint
      expected
  in
  check "discover" (List.length scens * (1 + warm_iters));
  check "exchange" (List.length scens * (1 + warm_iters) + total);
  Smg_serve.Server.stop srv;
  Domain.join server_domain;
  if json then begin
    let path = "BENCH_serve.json" in
    let endpoint_json (cold, p50, p95, ratio) =
      Printf.sprintf
        "{\"cold_ms\": %.3f, \"warm_p50_ms\": %.3f, \"warm_p95_ms\": %.3f, \
         \"warm_cold_ratio\": %.2f}"
        (1000. *. cold) (1000. *. p50) (1000. *. p95) ratio
    in
    let row (scen, d, e, combined) =
      Printf.sprintf
        "  {\"name\": \"serve/%s\", \"size\": %d,\n   \"discover\": %s,\n   \
         \"exchange\": %s,\n   \"warm_cold_ratio\": %.2f}"
        scen size (endpoint_json d) (endpoint_json e) combined
    in
    let oc = open_out path in
    Printf.fprintf oc
      "{\"throughput_rps\": %.1f,\n \"clients\": %d,\n \"server_domains\": \
       %d,\n \"requests\": %d,\n \"scenarios\": [\n%s\n ]}\n"
      rps clients domains total
      (String.concat ",\n" (List.map row per_scen));
    close_out oc;
    Fmt.pr "@.wrote %s (%d scenario(s))@." path (List.length per_scen)
  end

(* chaos: the robustness benchmark — drive the fault-injected service
   and record survival rate, retry counts, breaker trips, and
   journal-recovery latency. Exits 1 if the survival contract breaks,
   so CI catches a regression the same way it catches a failing test. *)
let chaos_bench json smoke seed domains =
  let requests = if smoke then 200 else 1000 in
  let journal = Filename.temp_file "mapdisc_chaos" ".journal" in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let cfg =
    {
      (Smg_serve.Chaos.config ~journal ~seed ~requests ~domains ()) with
      Smg_serve.Chaos.c_log = (fun line -> Fmt.epr "%s@." line);
    }
  in
  let r = Smg_serve.Chaos.run cfg in
  (try Sys.remove journal with Sys_error _ -> ());
  Fmt.pr "%a" Smg_serve.Chaos.pp_report r;
  if json then begin
    let path = "BENCH_chaos.json" in
    let oc = open_out path in
    output_string oc (Smg_serve.Chaos.report_json r);
    close_out oc;
    Fmt.pr "@.wrote %s@." path
  end;
  if not (Smg_serve.Chaos.ok r) then exit 1

let cmd_of name doc f = Cmd.v (Cmd.info name ~doc) Term.(const f $ const ())

let exchange_scale_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Write BENCH_exchange.json")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ] ~doc:"Tiny sizes only (CI smoke test)")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Source seed")
  in
  let sizes =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "sizes" ] ~docv:"R1,R2,..."
          ~doc:"Rows per source table at each scale point")
  in
  Cmd.v
    (Cmd.info "exchange-scale"
       ~doc:
         "Plan-based exchange engine vs the naive chase at increasing \
          source sizes")
    Term.(const exchange_scale $ json $ smoke $ seed $ sizes)

let parallel_scale_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Write BENCH_parallel.json")
  in
  let smoke =
    Arg.(
      value & flag & info [ "smoke" ] ~doc:"Tiny sizes only (CI smoke test)")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Source seed")
  in
  let domains =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "domains" ] ~docv:"N1,N2,..."
          ~doc:
            "Domain counts to sweep (default 1,2,4,8); the discovery \
             speedup is relative to the first, the exchange speedups to \
             the frozen boxed engine run sequentially")
  in
  let rows =
    Arg.(
      value
      & opt (some int) None
      & info [ "rows" ] ~docv:"R"
          ~doc:"Rows per source table for the exchange workload (default 256)")
  in
  let gen_tuples =
    Arg.(
      value
      & opt (some int) None
      & info [ "gen-tuples" ] ~docv:"N"
          ~doc:
            "Source-instance size for the generated-fixture exchange \
             workload (default 100000; smoke 2000)")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"K"
          ~doc:
            "Membership-shard count for the exchange stores (default: one \
             shard per domain in each row)")
  in
  let min_gen_speedup =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-gen-speedup" ] ~docv:"X"
          ~doc:
            "Exit non-zero if the generated-fixture speedup at the largest \
             domain count falls below X (CI perf gate)")
  in
  Cmd.v
    (Cmd.info "parallel-scale"
       ~doc:
         "Pooled discovery and exchange at increasing domain counts, with \
          output-invariance checks against the frozen boxed engine")
    Term.(
      const parallel_scale $ json $ smoke $ seed $ domains $ rows $ gen_tuples
      $ shards $ min_gen_speedup)

let incremental_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Write BENCH_incremental.json")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ] ~doc:"Tiny fixture, three fractions (CI smoke test)")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"S" ~doc:"Generator seed")
  in
  let gen_tuples =
    Arg.(
      value
      & opt (some int) None
      & info [ "gen-tuples" ] ~docv:"N"
          ~doc:"Source-instance size (default 100000; smoke 2000)")
  in
  Cmd.v
    (Cmd.info "incremental"
       ~doc:
         "Delta-chase maintenance vs a full re-chase across batch sizes on \
          the generated fixture, with per-row homomorphic-equivalence and \
          rollback checks")
    Term.(const incremental $ json $ smoke $ seed $ gen_tuples)

let compose_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Write BENCH_compose.json")
  in
  let smoke =
    Arg.(
      value & flag & info [ "smoke" ] ~doc:"Tiny sizes only (CI smoke test)")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Source seed")
  in
  let size =
    Arg.(
      value & opt int 4
      & info [ "size" ] ~docv:"ROWS" ~doc:"Rows per source table")
  in
  Cmd.v
    (Cmd.info "compose"
       ~doc:
         "Composed one-shot exchange vs the sequential two-hop pipeline on \
          round-trip chains over every domain")
    Term.(const compose_report $ json $ smoke $ seed $ size)

let generate_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Write BENCH_generate.json")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ] ~doc:"Two cells at tiny scale (CI smoke test)")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Generator seed")
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:
         "Stress matrix over generated scenarios: ISA depth × correspondence \
          density × witness scale, semantic discovery vs the RIC baseline \
          with dedup, exchange at each cell's scale")
    Term.(const generate_matrix $ json $ smoke $ seed)

let serve_load_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Write BENCH_serve.json")
  in
  let smoke =
    Arg.(
      value & flag & info [ "smoke" ] ~doc:"One scenario, few requests (CI)")
  in
  let domains =
    Arg.(
      value & opt int 4
      & info [ "domains" ] ~docv:"N" ~doc:"Server handler domains")
  in
  let clients =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~docv:"C"
          ~doc:"Concurrent client domains for the throughput phase")
  in
  Cmd.v
    (Cmd.info "serve-load"
       ~doc:
         "Cold-vs-warm latency and concurrent throughput of the mapdisc \
          HTTP service (in-process server on an ephemeral port)")
    Term.(const serve_load $ json $ smoke $ domains $ clients)

let chaos_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Write BENCH_chaos.json")
  in
  let smoke =
    Arg.(value & flag & info [ "smoke" ] ~doc:"200 requests instead of 1000")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"S" ~doc:"Fault-plane seed")
  in
  let domains =
    Arg.(
      value & opt int 4
      & info [ "domains" ] ~docv:"N" ~doc:"Server handler domains")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Survival benchmark: the seeded chaos workload (with a journal and \
          a kill-and-recover phase) against the fault-injected service; \
          records survival rate, retry counts, breaker trips, and recovery \
          latency")
    Term.(const chaos_bench $ json $ smoke $ seed $ domains)

let () =
  (* benchmark-sized minor heap (32 MB): with several domains alive on
     few cores, every minor collection is a cross-domain stop-the-world
     handshake — fewer, larger collections keep that tax out of the
     measured loops (applied uniformly, baselines included) *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 1 lsl 22 };
  let default = Term.(const all $ const ()) in
  let info =
    Cmd.info "experiments" ~version:"1.0"
      ~doc:
        "Reproduce the evaluation of 'A Semantic Approach to Discovering \
         Schema Mapping Expressions' (ICDE 2007)"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            cmd_of "table1" "Test-data characteristics (paper Table 1)" table1;
            cmd_of "fig6" "Average precision per domain (paper Figure 6)" fig6;
            cmd_of "fig7" "Average recall per domain (paper Figure 7)" fig7;
            cmd_of "cases" "Per-case precision/recall breakdown" cases;
            cmd_of "ablation" "Ablation of the method's ingredients" ablation;
            cmd_of "redundancy"
              "RIC candidates equivalent to / subsumed by semantic candidates"
              redundancy;
            cmd_of "witness"
              "Execute matched mappings vs benchmarks on generated instances"
              witness;
            exchange_scale_cmd;
            serve_load_cmd;
            chaos_cmd;
            parallel_scale_cmd;
            incremental_cmd;
            compose_cmd;
            generate_cmd;
            cmd_of "all" "Everything" all;
          ]))
