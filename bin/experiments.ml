(* Regenerates the paper's evaluation artefacts (Table 1, Figures 6/7)
   from the built-in datasets.

   Usage:
     experiments            — everything
     experiments table1     — dataset characteristics + generation time
     experiments fig6       — average precision per domain
     experiments fig7       — average recall per domain
     experiments cases      — per-case breakdown *)

open Cmdliner

let results = lazy (Smg_eval.Experiments.run_all (Smg_eval.Datasets.all ()))

let table1 () = Fmt.pr "%a@." Smg_eval.Experiments.pp_table1 (Lazy.force results)
let fig6 () = Fmt.pr "%a@." Smg_eval.Experiments.pp_fig6 (Lazy.force results)
let fig7 () = Fmt.pr "%a@." Smg_eval.Experiments.pp_fig7 (Lazy.force results)

let ablation () =
  Fmt.pr "Over the seven benchmark domains:@.%a@." Smg_eval.Ablation.pp
    (Smg_eval.Ablation.run (Smg_eval.Datasets.all ()));
  Fmt.pr "@.Over the diagnostic micro-scenarios:@.%a@." Smg_eval.Ablation.pp
    (Smg_eval.Ablation.run_micro ())

let redundancy () =
  let rows =
    List.map
      (fun scen -> (scen, Smg_eval.Experiments.redundancy scen))
      (Smg_eval.Datasets.all ())
  in
  Fmt.pr "%a@." Smg_eval.Experiments.pp_redundancy rows

let witness () =
  List.iter
    (fun scen ->
      Fmt.pr "== %s@." scen.Smg_eval.Scenario.scen_name;
      List.iter
        (fun v -> Fmt.pr "  %a@." Smg_eval.Witness.pp_verdict v)
        (Smg_eval.Witness.check_scenario scen))
    (Smg_eval.Datasets.all ())

let cases () =
  List.iter
    (fun r -> Fmt.pr "%a@." Smg_eval.Experiments.pp_cases r)
    (Lazy.force results)

let all () =
  table1 ();
  Fmt.pr "@.";
  cases ();
  Fmt.pr "@.";
  fig6 ();
  Fmt.pr "@.";
  fig7 ();
  Fmt.pr "@.";
  redundancy ();
  Fmt.pr "@.";
  ablation ()

let cmd_of name doc f = Cmd.v (Cmd.info name ~doc) Term.(const f $ const ())

let () =
  let default = Term.(const all $ const ()) in
  let info =
    Cmd.info "experiments" ~version:"1.0"
      ~doc:
        "Reproduce the evaluation of 'A Semantic Approach to Discovering \
         Schema Mapping Expressions' (ICDE 2007)"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            cmd_of "table1" "Test-data characteristics (paper Table 1)" table1;
            cmd_of "fig6" "Average precision per domain (paper Figure 6)" fig6;
            cmd_of "fig7" "Average recall per domain (paper Figure 7)" fig7;
            cmd_of "cases" "Per-case precision/recall breakdown" cases;
            cmd_of "ablation" "Ablation of the method's ingredients" ablation;
            cmd_of "redundancy"
              "RIC candidates equivalent to / subsumed by semantic candidates"
              redundancy;
            cmd_of "witness"
              "Execute matched mappings vs benchmarks on generated instances"
              witness;
            cmd_of "all" "Everything" all;
          ]))
