(* mapdisc — discover schema mappings for a scenario described in the
   smg DSL.

   A scenario file contains two schemas (first = source, second =
   target), two CMs (same order), one `semantics` block per table, and
   `corr` declarations. See README for the format.

   Subcommands:
     discover FILE   run mapping discovery (semantic, RIC-based, or both)
     verify FILE     containment/equivalence matrix + dedup report
     match FILE      propose correspondences with the name matcher
     show FILE       parse and pretty-print the scenario (round-trip)
     compose         compose a multi-hop pipeline into one mapping *)

open Cmdliner
module Ast = Smg_dsl.Ast
module Schema = Smg_relational.Schema
module Mapping = Smg_cq.Mapping
module Discover = Smg_core.Discover
module Mapverify = Smg_verify.Mapverify
module Budget = Smg_robust.Budget
module Diag = Smg_robust.Diag
module Compose = Smg_compose.Compose
module Invert = Smg_compose.Invert
module Pipeline = Smg_compose.Pipeline

(* Exit codes: 0 success (possibly with degraded/approximate results),
   1 no result, 2 bad input (parse/validation), 3 budget exhausted with
   only partial results (or, under --strict, any degradation). *)

let parse_scenario file =
  match Smg_dsl.Parser.parse_file file with
  | doc -> doc
  | exception Smg_dsl.Parser.Error (msg, line, col) ->
      Fmt.epr "%s:%d:%d: %s@." file line col msg;
      exit 2
  | exception Sys_error msg ->
      Fmt.epr "error: %s@." msg;
      exit 2
  | exception Invalid_argument msg ->
      Fmt.epr "%s: %s@." file msg;
      exit 2

let load file =
  let doc = parse_scenario file in
  (* the lowering itself lives in Smg_serve.Registry so the CLI and the
     HTTP service build identical sides from the same document *)
  match Smg_serve.Registry.sides_of_doc doc with
  | Ok (source, target) -> (doc, source, target)
  | Error msg ->
      Fmt.epr "%s: %s@." file msg;
      exit 2

type meth = Semantic | Ric | Both

let label_by_rank ms =
  List.mapi
    (fun i (m : Mapping.t) ->
      Mapping.rename (Printf.sprintf "%s#%d" m.Mapping.m_name (i + 1)) m)
    ms

let make_budget budget_ms fuel =
  match (budget_ms, fuel) with
  | None, None -> None
  | deadline_ms, fuel -> Some (Budget.create ?deadline_ms ?fuel ())

(* --domains N: 1 means sequential (no pool is created at all); the
   default comes from Pool.default_domains (SMG_DOMAINS or the
   recommended domain count, capped at 8). *)
let with_domains domains f =
  let domains =
    match domains with
    | Some n -> max 1 n
    | None -> Smg_parallel.Pool.default_domains ()
  in
  if domains <= 1 then f None
  else Smg_parallel.Pool.with_pool ~domains (fun pool -> f (Some pool))

(* The JSON encodings live in Smg_serve.Render so the CLI's --json
   output and the HTTP service's response bodies are byte-identical. *)
module Render = Smg_serve.Render

let run_discover file meth verbose sql dedup budget_ms fuel strict diagnostics
    json domains =
  if verbose then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  let doc, source, target = load file in
  let corrs = doc.Ast.doc_corrs in
  if corrs = [] then begin
    Fmt.epr "error: the scenario declares no correspondences@.";
    exit 2
  end;
  with_domains domains @@ fun pool ->
  if json then begin
    (* machine-readable mirror of the human output, rendered by the
       module the HTTP service shares so the bytes match a served
       POST /scenarios/:name/discover response *)
    let budget = make_budget budget_ms fuel in
    let meth =
      match meth with Semantic -> `Semantic | Ric -> `Ric | Both -> `Both
    in
    let out =
      Render.discover_json ?budget ?pool ~meth ~dedup ~file ~source ~target
        ~corrs ()
    in
    print_string out.Render.dj_json;
    let code = ref 0 in
    if out.Render.dj_count = 0 then code := 1;
    if strict then begin
      if not out.Render.dj_exact then code := max !code 3;
      if Diag.has_errors out.Render.dj_diags then code := max !code 2
    end;
    exit !code
  end;
  let maybe_dedup title ms =
    if not dedup then ms
    else begin
      let report =
        Mapverify.dedup ?pool ~source:source.Discover.schema
          ~target:target.Discover.schema (label_by_rank ms)
      in
      Fmt.pr "[%s] %s@." title (Mapverify.summary report);
      report.Mapverify.rp_kept
    end
  in
  let print_all title ms =
    let ms = maybe_dedup title ms in
    Fmt.pr "== %s: %d candidate(s) ==@." title (List.length ms);
    List.iteri
      (fun i m ->
        Fmt.pr "@.#%d %a@." (i + 1) Mapping.pp m;
        Fmt.pr "   tgd: %a@." Smg_cq.Dependency.pp_tgd (Mapping.to_tgd m);
        Fmt.pr "   source algebra: %a@."
          Smg_relational.Algebra.pp
          (Mapping.src_algebra source.Discover.schema m);
        if sql then begin
          Fmt.pr "   source SQL:@.%s@."
            (Smg_cq.Sql.select_of_query source.Discover.schema
               m.Mapping.src_query);
          List.iter (Fmt.pr "   exchange SQL:@.%s@.")
            (Smg_cq.Sql.insert_of_mapping ~source:source.Discover.schema
               ~target:target.Discover.schema m)
        end)
      ms
  in
  let code = ref 0 in
  let bump c = if c > !code then code := c in
  (match meth with
  | Semantic | Both ->
      let pre = Discover.lint ~source ~target ~corrs in
      let budget = make_budget budget_ms fuel in
      let o = Discover.discover_bounded ?budget ?pool ~source ~target ~corrs () in
      let diags = pre @ o.Discover.o_diags in
      if diagnostics && diags <> [] then
        Fmt.pr "== diagnostics ==@.%a@.%s@.@." Diag.pp_list diags
          (Diag.summary diags);
      let n_approx =
        List.length (List.filter Mapping.is_approximate o.Discover.o_mappings)
      in
      if n_approx > 0 then
        Fmt.pr
          "note: %d of %d candidate(s) are approximate (budget-degraded \
           search)@."
          n_approx
          (List.length o.Discover.o_mappings);
      print_all "semantic" o.Discover.o_mappings;
      if o.Discover.o_mappings = [] then bump 1;
      if strict then begin
        if not o.Discover.o_exact then bump 3;
        if Diag.has_errors diags then bump 2
      end
  | Ric -> ());
  (match meth with
  | Ric | Both ->
      print_all "RIC-based (Clio-style)"
        (Smg_ric.Baseline.generate ~source:source.Discover.schema
           ~target:target.Discover.schema ~corrs)
  | Semantic -> ());
  if !code <> 0 then exit !code

(* verify: pairwise logical comparison of the candidates both methods
   produce, then a dedup report over the combined ranked list (semantic
   first, so a RIC candidate equivalent to a semantic one is absorbed by
   the semantic representative). *)
let run_verify file limit =
  let doc, source, target = load file in
  let corrs = doc.Ast.doc_corrs in
  if corrs = [] then begin
    Fmt.epr "error: the scenario declares no correspondences@.";
    exit 2
  end;
  let s_schema = source.Discover.schema and t_schema = target.Discover.schema in
  let take n xs = List.filteri (fun i _ -> i < n) xs in
  let label tag ms =
    List.mapi
      (fun i m -> Mapping.rename (Printf.sprintf "%s%d" tag (i + 1)) m)
      ms
  in
  let sem_all = Discover.discover ~source ~target ~corrs () in
  let ric_all = Smg_ric.Baseline.generate ~source:s_schema ~target:t_schema ~corrs in
  let truncated name all =
    if List.length all > limit then
      Fmt.pr "note: comparing the %d best of %d %s candidate(s)@." limit
        (List.length all) name
  in
  truncated "semantic" sem_all;
  truncated "RIC-based" ric_all;
  let sem = label "S" (take limit sem_all)
  and ric = label "R" (take limit ric_all) in
  let all = Array.of_list (sem @ ric) in
  let n = Array.length all in
  if n = 0 then begin
    Fmt.epr "error: neither method produced a candidate@.";
    exit 1
  end;
  Array.iter
    (fun (m : Mapping.t) ->
      Fmt.pr "%-4s %a@." m.Mapping.m_name Smg_cq.Dependency.pp_tgd
        (Mapping.to_tgd m))
    all;
  (* one implication test per ordered pair; the matrix reads row → column *)
  let imp =
    Array.init n (fun i ->
        Array.init n (fun j ->
            i = j
            || Mapverify.implies ~source:s_schema ~target:t_schema all.(i)
                 all.(j)))
  in
  Fmt.pr "@.containment matrix (cell: row = / > / < / . column):@.";
  Fmt.pr "     %s@."
    (String.concat " "
       (Array.to_list
          (Array.map (fun (m : Mapping.t) -> Printf.sprintf "%3s" m.Mapping.m_name) all)));
  Array.iteri
    (fun i (mi : Mapping.t) ->
      let cells =
        Array.to_list
          (Array.init n (fun j ->
               let s =
                 match (imp.(i).(j), imp.(j).(i)) with
                 | true, true -> "="
                 | true, false -> ">"
                 | false, true -> "<"
                 | false, false -> "."
               in
               Printf.sprintf "%3s" s))
      in
      Fmt.pr "%-4s %s@." mi.Mapping.m_name (String.concat " " cells))
    all;
  let report =
    Mapverify.dedup ~source:s_schema ~target:t_schema (Array.to_list all)
  in
  Fmt.pr "@.%a@." Mapverify.pp_report report;
  (* cross-method redundancy, straight off the implication matrix *)
  let n_sem = List.length sem in
  let ric_equiv = ref 0 and ric_subsumed = ref 0 in
  List.iteri
    (fun k _ ->
      let i = n_sem + k in
      let equiv = ref false and subs = ref false in
      for j = 0 to n_sem - 1 do
        if imp.(i).(j) && imp.(j).(i) then equiv := true
        else if imp.(j).(i) then subs := true
      done;
      if !equiv then incr ric_equiv else if !subs then incr ric_subsumed)
    ric;
  Fmt.pr
    "RIC redundancy: %d of %d RIC candidate(s) logically equivalent to a \
     semantic candidate, %d more subsumed by one@."
    !ric_equiv (List.length ric) !ric_subsumed

let run_match file threshold =
  let doc, source, target = load file in
  ignore doc;
  let proposals =
    Smg_matching.Matcher.propose ~threshold ~source:source.Discover.schema
      ~target:target.Discover.schema ()
  in
  List.iter
    (fun (r : Smg_matching.Matcher.match_result) ->
      Fmt.pr "%.2f  %a@." r.confidence Mapping.pp_corr r.corr)
    proposals

let run_show file =
  let doc = Smg_dsl.Parser.parse_file file in
  Fmt.pr "%a@." Smg_dsl.Printer.pp doc

(* exchange: execute mappings over a source instance — either a DSL
   scenario file with data blocks, or a built-in evaluation domain
   (--scenario) over a generated source of roughly --size tuples. *)

let tgds_of_best ~target (best : Mapping.t) =
  if best.Mapping.outer then Mapping.outer_variants ~target best
  else [ Mapping.to_tgd best ]

let exchange_file_inputs ~quiet file size seed =
  let doc, source, target = load file in
  let corrs = doc.Ast.doc_corrs in
  if corrs = [] then begin
    Fmt.epr "error: the scenario declares no correspondences@.";
    exit 2
  end;
  (* a file without data blocks runs over a seeded witness instance —
     the same fallback (and head fields) the HTTP service uses, so the
     --json bytes still match a served exchange response *)
  let from_data = Ast.instance_of doc source.Discover.schema in
  let src_inst, head =
    if Smg_relational.Instance.total_tuples from_data > 0 then
      (from_data, [ ("file", Render.json_str file) ])
    else begin
      let schema = source.Discover.schema in
      let n_tables = max 1 (List.length schema.Schema.tables) in
      let rows = max 1 (size / n_tables) in
      if not quiet then
        Fmt.pr
          "no data blocks; generating a witness source (%d rows/table, seed \
           %d)@."
          rows seed;
      ( Smg_eval.Witness.populate_cached ~rows_per_table:rows ~seed schema,
        [
          ("file", Render.json_str file);
          ("size", string_of_int size);
          ("seed", string_of_int seed);
        ] )
    end
  in
  (match Smg_relational.Instance.check_rics source.Discover.schema src_inst with
  | [] -> ()
  | violations ->
      Fmt.epr "error: source data violates %d referential constraint(s)@."
        (List.length violations);
      exit 2);
  match Discover.discover ~source ~target ~corrs () with
  | [] ->
      Fmt.epr "error: no mapping discovered@.";
      exit 1
  | best :: _ ->
      if not quiet then Fmt.pr "Executing: %a@.@." Mapping.pp best;
      ( source.Discover.schema,
        target.Discover.schema,
        tgds_of_best ~target:target.Discover.schema best,
        src_inst,
        head,
        file )

let exchange_scenario_inputs ~quiet name size seed =
  let scens = Smg_eval.Datasets.all () in
  let lname = String.lowercase_ascii name in
  let scen =
    match
      List.find_opt
        (fun (s : Smg_eval.Scenario.t) ->
          String.lowercase_ascii s.Smg_eval.Scenario.scen_name = lname)
        scens
    with
    | Some s -> s
    | None ->
        Fmt.epr "error: unknown scenario %s (available: %s)@." name
          (String.concat ", "
             (List.map
                (fun (s : Smg_eval.Scenario.t) -> s.Smg_eval.Scenario.scen_name)
                scens));
        exit 2
  in
  let source = scen.Smg_eval.Scenario.source
  and target = scen.Smg_eval.Scenario.target in
  (* the best discovered mapping of every benchmark case, executed
     together — the engine's preparation dedups equivalent tgds; the
     construction is shared with the HTTP service's registry *)
  let mappings = Smg_serve.Registry.scenario_tgds scen in
  if mappings = [] then begin
    Fmt.epr "error: discovery produced no mapping for %s@."
      scen.Smg_eval.Scenario.scen_name;
    exit 1
  end;
  let schema = source.Discover.schema in
  let n_tables = max 1 (List.length schema.Schema.tables) in
  let rows = max 1 (size / n_tables) in
  let inst = Smg_eval.Witness.populate_cached ~rows_per_table:rows ~seed schema in
  if not quiet then
    Fmt.pr
      "scenario %s: %d tgd(s) from %d case(s); source: %d tuple(s) (%d \
       rows/table, seed %d)@.@."
      scen.Smg_eval.Scenario.scen_name (List.length mappings)
      (List.length scen.Smg_eval.Scenario.cases)
      (Smg_relational.Instance.total_tuples inst)
      rows seed;
  ( schema,
    target.Discover.schema,
    mappings,
    inst,
    [
      ("scenario", Render.json_str scen.Smg_eval.Scenario.scen_name);
      ("size", string_of_int size);
      ("seed", string_of_int seed);
    ],
    String.lowercase_ascii scen.Smg_eval.Scenario.scen_name )

let pp_cardinalities ppf inst =
  List.iter
    (fun name ->
      match Smg_relational.Instance.relation inst name with
      | None -> ()
      | Some r ->
          Fmt.pf ppf "  %-24s %d tuple(s)@." name
            (List.length r.Smg_relational.Instance.tuples))
    (Smg_relational.Instance.names inst)

(* --apply-delta: instead of one bulk execution, initialize the
   incremental maintenance state over the source, apply the batch, and
   print the maintained target — the same Smg_delta.Maintain path (and,
   under --json, the same document construction) as a served
   POST /scenarios/:name/delta. *)
let run_exchange_delta ~json ~print_data ~source ~target ~mappings ~src_inst
    ~head ?shards path =
  let text =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Smg_delta.Batch.parse ~schema:source text with
  | Error m ->
      Fmt.epr "error: %s: %s@." path m;
      exit 2
  | Ok batch -> (
      let fail m =
        Fmt.epr "error: exchange failed: %s@." m;
        exit 1
      in
      let prepared =
        Smg_delta.Maintain.prepare
          ~card:(fun n -> Smg_relational.Instance.cardinality src_inst n)
          ~source ~target ~mappings ()
      in
      match prepared with
      | Error m -> fail m
      | Ok compiled -> (
          match Smg_delta.Maintain.init ?shards compiled src_inst with
          | Error m -> fail m
          | Ok st -> (
              match Smg_delta.Maintain.apply st batch with
              | Error m -> fail m
              | Ok (st, c) ->
                  let head =
                    head
                    @ [
                        ( "batch",
                          string_of_int (Smg_delta.Maintain.batches st) );
                        ("delta", Smg_serve.Registry.counters_json c);
                      ]
                  in
                  let rep = Smg_delta.Maintain.report st in
                  if json then begin
                    print_string
                      (Render.exchange_json ~head ~laconic:false rep);
                    exit 0
                  end;
                  let ins, del = Smg_delta.Batch.counts batch in
                  Fmt.pr
                    "delta: %d insert(s), %d delete(s); fired %d trigger(s),                      added %d fact(s), retracted %d, collected %d null(s)                      (%.3f ms)@.@."
                    ins del c.Smg_delta.Maintain.mc_triggers_fired
                    c.Smg_delta.Maintain.mc_facts_added
                    c.Smg_delta.Maintain.mc_facts_retracted
                    c.Smg_delta.Maintain.mc_nulls_collected
                    (1000. *. c.Smg_delta.Maintain.mc_seconds);
                  let out = rep.Smg_exchange.Engine.r_target in
                  if print_data then
                    Fmt.pr "Target instance:@.%a@."
                      Smg_relational.Instance.pp out
                  else begin
                    Fmt.pr "Target cardinalities:@.";
                    Fmt.pr "%a" pp_cardinalities out
                  end;
                  exit 0)))

let run_exchange file scenario size seed engine no_laconic core print_data
    budget_ms fuel json domains shards apply_delta =
  with_domains domains @@ fun pool ->
  let source, target, mappings, src_inst, head, subject =
    match (scenario, file) with
    | Some name, _ -> exchange_scenario_inputs ~quiet:json name size seed
    | None, Some file -> exchange_file_inputs ~quiet:json file size seed
    | None, None ->
        Fmt.epr "error: provide a scenario FILE or --scenario NAME@.";
        exit 2
  in
  (match apply_delta with
  | Some path ->
      if engine <> `Fast || core then begin
        Fmt.epr "error: --apply-delta supports the fast engine without                  --core@.";
        exit 2
      end;
      run_exchange_delta ~json ~print_data ~source ~target ~mappings ~src_inst
        ~head ?shards path
  | None -> ());
  (* a FILE's data blocks are small: print them in full by default; a
     generated witness source (head carries "size") is not *)
  let print_data =
    print_data || (scenario = None && not (List.mem_assoc "size" head))
  in
  if json then begin
    (* the bytes of this document match a served
       POST /scenarios/:name/exchange response: same Render module,
       canonical null numbering, no timings *)
    if engine <> `Fast || core then begin
      Fmt.epr "error: --json supports the fast engine without --core@.";
      exit 2
    end;
    let laconic = not no_laconic in
    match
      Smg_exchange.Engine.run_bounded
        ?budget:(make_budget budget_ms fuel)
        ?pool ?shards ~laconic ~source ~target ~mappings src_inst
    with
    | Smg_exchange.Engine.Failed msg ->
        Fmt.epr "error: exchange failed: %s@." msg;
        exit 1
    | Smg_exchange.Engine.Complete rep ->
        print_string (Render.exchange_json ~head ~laconic rep);
        exit 0
    | Smg_exchange.Engine.Budget_exhausted (reason, rep) ->
        let diag =
          Diag.degraded ~subject Diag.Exchange reason
            "target instance is a partial prefix"
        in
        print_string
          (Render.exchange_json ~head ~exhausted:reason ~diags:[ diag ]
             ~laconic rep);
        exit 3
  end;
  let partial = ref false in
  let out =
    match engine with
    | `Fast -> (
        match
          Smg_exchange.Engine.run_bounded
            ?budget:(make_budget budget_ms fuel)
            ?pool ?shards ~laconic:(not no_laconic) ~source ~target ~mappings
            src_inst
        with
        | Smg_exchange.Engine.Failed msg ->
            Fmt.epr "error: exchange failed: %s@." msg;
            exit 1
        | Smg_exchange.Engine.Budget_exhausted (reason, rep) ->
            partial := true;
            Fmt.pr "warning: %a budget exhausted; target is a partial prefix@."
              Budget.pp_reason reason;
            Fmt.pr "%a@.@." Smg_exchange.Engine.pp_report rep;
            rep.Smg_exchange.Engine.r_target
        | Smg_exchange.Engine.Complete rep ->
            Fmt.pr "%a@.@." Smg_exchange.Engine.pp_report rep;
            rep.Smg_exchange.Engine.r_target)
    | `Chase -> (
        let outcome, secs =
          Smg_exchange.Obs.time (fun () ->
              Smg_exchange.Naive.exchange ~source ~target ~mappings src_inst)
        in
        match outcome with
        | Smg_cq.Chase.Saturated out | Smg_cq.Chase.Bounded out ->
            Fmt.pr "naive chase: %.3f ms, target tuples: %d@.@."
              (1000. *. secs)
              (Smg_relational.Instance.total_tuples out);
            out
        | Smg_cq.Chase.Failed msg ->
            Fmt.epr "error: chase failed: %s@." msg;
            exit 1)
  in
  let out =
    if not core then out
    else begin
      let before = Smg_relational.Instance.total_tuples out in
      let cored, secs =
        Smg_exchange.Obs.time (fun () -> Smg_verify.Icore.core out)
      in
      Fmt.pr "core: %d -> %d tuple(s) (%.3f ms)@.@." before
        (Smg_relational.Instance.total_tuples cored)
        (1000. *. secs);
      cored
    end
  in
  if print_data then
    Fmt.pr "Target instance:@.%a@." Smg_relational.Instance.pp out
  else begin
    Fmt.pr "Target cardinalities:@.";
    Fmt.pr "%a" pp_cardinalities out
  end;
  if !partial then exit 3

(* compose: chain scenario files into a pipeline A → B → … → Z, discover
   the best mapping per hop, and compose the chain into one A → Z
   mapping. --invert appends the quasi-inverse of the forward
   composition (reverse migration into a primed copy of the original
   source). --verify materializes the chain both ways and compares. *)

let load_hop file =
  let doc, source, target = load file in
  let corrs = doc.Ast.doc_corrs in
  if corrs = [] then begin
    Fmt.epr "%s: error: the scenario declares no correspondences@." file;
    exit 2
  end;
  match Discover.discover ~source ~target ~corrs () with
  | [] ->
      Fmt.epr "%s: error: no mapping discovered@." file;
      exit 1
  | best :: _ ->
      let hop =
        {
          Pipeline.h_source = source.Discover.schema;
          h_target = target.Discover.schema;
          h_tgds = tgds_of_best ~target:target.Discover.schema best;
        }
      in
      Fmt.pr "%s: %s (%d tgd(s))@." file best.Mapping.m_name
        (List.length hop.Pipeline.h_tgds);
      (doc, hop)

let run_compose files invert verify size seed budget_ms fuel domains =
  if files = [] then begin
    Fmt.epr "error: --pipeline needs at least one scenario file@.";
    exit 2
  end;
  with_domains domains @@ fun pool ->
  let docs_hops = List.map load_hop files in
  let first_doc = fst (List.hd docs_hops) in
  let hops0 = List.map snd docs_hops in
  let budget = make_budget budget_ms fuel in
  let first = List.hd hops0 in
  let last0 = List.nth hops0 (List.length hops0 - 1) in
  let hops =
    if not invert then hops0
    else begin
      let fwd_exec =
        match hops0 with
        | [ h ] -> h.Pipeline.h_tgds
        | _ -> (Pipeline.compose_chain ?budget hops0).Compose.c_exec
      in
      let primed = Invert.prime_schema ~suffix:"_inv" first.Pipeline.h_source in
      Fmt.pr "appending quasi-inverse hop: %s -> %s@."
        last0.Pipeline.h_target.Schema.schema_name
        primed.Schema.schema_name;
      hops0
      @ [
          {
            Pipeline.h_source = last0.Pipeline.h_target;
            h_target = primed;
            h_tgds = Invert.quasi_inverse ~prime:"_inv" fwd_exec;
          };
        ]
    end
  in
  if List.length hops < 2 then begin
    Fmt.epr
      "error: composition needs at least two hops; chain several files with \
       --pipeline a.smg,b.smg or round-trip one with --invert@.";
    exit 2
  end;
  List.iter (Fmt.epr "warning: %s@.") (Pipeline.check hops);
  let r = Pipeline.compose_chain ?budget hops in
  Fmt.pr "@.== composed mapping (%d hop(s)) ==@.%a@." (List.length hops)
    Compose.pp r;
  (match r.Compose.c_budget with
  | Some reason ->
      Fmt.epr "error: %a budget exhausted during composition@."
        Budget.pp_reason reason;
      exit 3
  | None -> ());
  if verify then begin
    let src_schema = (List.hd hops).Pipeline.h_source in
    let inst =
      let from_data = Ast.instance_of first_doc src_schema in
      if Smg_relational.Instance.total_tuples from_data > 0 then begin
        Fmt.pr "@.verifying over the first scenario's data blocks@.";
        from_data
      end
      else begin
        let n_tables = max 1 (List.length src_schema.Schema.tables) in
        let rows = max 1 (size / n_tables) in
        Fmt.pr "@.verifying over a generated source (%d rows/table, seed %d)@."
          rows seed;
        Smg_eval.Witness.populate_cached ~rows_per_table:rows ~seed src_schema
      end
    in
    match Pipeline.verify ?budget ?pool hops ~exec:r.Compose.c_exec inst with
    | Ok vd ->
        Fmt.pr "%a@." Pipeline.pp_verdict vd;
        if not vd.Pipeline.vd_equiv then begin
          Fmt.epr
            "error: composed one-shot result is not hom-equivalent to the \
             sequential pipeline@.";
          exit 1
        end
    | Error (Pipeline.Exhausted reason) ->
        Fmt.epr "error: %a budget exhausted during verification@."
          Budget.pp_reason reason;
        exit 3
    | Error (Pipeline.Failed msg) ->
        Fmt.epr "error: pipeline execution failed: %s@." msg;
        exit 1
  end

let run_ddl file =
  let doc, source, target = load file in
  ignore doc;
  Fmt.pr "-- source schema@.%s@.@.-- target schema@.%s@."
    (Smg_relational.Sql_ddl.create_schema source.Discover.schema)
    (Smg_relational.Sql_ddl.create_schema target.Discover.schema)

let run_dot file which =
  let doc, source, target = load file in
  ignore doc;
  let side = match which with `Source -> source | `Target -> target in
  print_string
    (Smg_cm.Dot.of_cm_graph
       ~name:side.Discover.schema.Smg_relational.Schema.schema_name
       side.Discover.cmg)

(* generate: synthesize a complete discovery scenario from a seeded
   parameter vector (lib/generate). --emit-dsl prints the scenario as
   .smg text (round-trips through the parser); --check N instead runs N
   consecutive seeds through discovery + dedup + exchange under a fuel
   budget and reports a smoke summary — the CI generate job. *)

module Gen = Smg_generate.Gen
module Gparams = Smg_generate.Params

let run_generate seed isa_depth roots reify partof attrs density scale emit_dsl
    with_data out check fuel =
  let params seed =
    Gparams.clamp
      {
        Gparams.seed;
        isa_depth;
        n_roots = roots;
        reify;
        partof;
        attrs_per_class = attrs;
        corr_density = density;
        scale;
      }
  in
  if check > 0 then begin
    let crashes = ref 0
    and violations = ref 0
    and no_map = ref 0
    and egd = ref 0
    and ok = ref 0 in
    for s = seed to seed + check - 1 do
      let p = params s in
      match
        let g = Gen.build p in
        let source = g.Gen.g_source and target = g.Gen.g_target in
        let inst = Gen.source_instance ~scale:(min p.Gparams.scale 500) g in
        let n_viol =
          List.length
            (Smg_relational.Instance.check_rics source.Discover.schema inst)
        in
        if n_viol > 0 then violations := !violations + n_viol;
        let budget = Budget.create ~fuel:(Option.value ~default:500_000 fuel) () in
        let o =
          Discover.discover_bounded ~budget ~source ~target
            ~corrs:g.Gen.g_corrs ()
        in
        let sem = Render.label_by_rank o.Discover.o_mappings in
        let ric =
          Render.label_by_rank
            (Smg_ric.Baseline.generate ~source:source.Discover.schema
               ~target:target.Discover.schema ~corrs:g.Gen.g_corrs)
        in
        let _report =
          Mapverify.dedup ~source:source.Discover.schema
            ~target:target.Discover.schema (sem @ ric)
        in
        match o.Discover.o_mappings with
        | [] -> `No_map
        | best :: _ -> (
            let tgds = tgds_of_best ~target:target.Discover.schema best in
            match
              Smg_exchange.Engine.run ~source:source.Discover.schema
                ~target:target.Discover.schema ~mappings:tgds inst
            with
            | Ok _ -> `Ok
            | Error _ -> `Egd)
      with
      | `Ok -> incr ok
      | `No_map -> incr no_map
      | `Egd -> incr egd
      | exception e ->
          incr crashes;
          Fmt.epr "seed %d: CRASH %s@." s (Printexc.to_string e)
    done;
    Fmt.pr
      "generate --check %d: %d exchanged, %d without candidates, %d target-egd \
       conflicts, %d RIC violation(s), %d crash(es)@."
      check !ok !no_map !egd !violations !crashes;
    if !crashes > 0 || !violations > 0 then exit 1
  end
  else begin
    let p = params seed in
    let g = Gen.build p in
    if emit_dsl then begin
      let text = Gen.dsl ~with_data g in
      match out with
      | None -> print_string text
      | Some path ->
          let oc = open_out path in
          output_string oc text;
          close_out oc;
          Fmt.pr "wrote %s (%d bytes)@." path (String.length text)
    end
    else begin
      let side_stats label (side : Discover.side) =
        let n_cols =
          List.fold_left
            (fun acc (t : Schema.table) ->
              acc + List.length (Schema.column_names t))
            0 side.Discover.schema.Schema.tables
        in
        Fmt.pr "%-7s %d table(s), %d column(s), %d RIC(s)@." label
          (List.length side.Discover.schema.Schema.tables)
          n_cols
          (List.length side.Discover.schema.Schema.rics)
      in
      Fmt.pr "%a@." Gparams.pp p;
      side_stats "source:" g.Gen.g_source;
      side_stats "target:" g.Gen.g_target;
      Fmt.pr "cases:  %d target table(s) with correspondences; focus case %d \
              corr(s)@."
        (List.length g.Gen.g_cases)
        (List.length g.Gen.g_corrs);
      let inst = Gen.source_instance g in
      Fmt.pr "data:   %d source tuple(s) at scale %d (0 RIC violation(s) by \
              construction)@."
        (Smg_relational.Instance.total_tuples inst)
        p.Gparams.scale
    end
  end

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let meth_arg =
  let meth_conv =
    Arg.enum [ ("semantic", Semantic); ("ric", Ric); ("both", Both) ]
  in
  Arg.(value & opt meth_conv Both & info [ "m"; "method" ] ~docv:"METHOD")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ])
let sql_arg = Arg.(value & flag & info [ "sql" ] ~doc:"Also print SQL renderings")

let dedup_arg =
  Arg.(
    value & flag
    & info [ "dedup" ]
        ~doc:
          "Collapse logically equivalent candidates (keeping the best-ranked \
           representative) and annotate subsumed ones; prints a dedup summary \
           line per method")

let limit_arg =
  Arg.(
    value & opt int 8
    & info [ "limit" ] ~docv:"N"
        ~doc:"Compare at most N candidates per method in the matrix")

let which_arg =
  let side_conv = Arg.enum [ ("source", `Source); ("target", `Target) ] in
  Arg.(value & opt side_conv `Source & info [ "side" ] ~docv:"SIDE")

let threshold_arg =
  Arg.(value & opt float 0.55 & info [ "t"; "threshold" ] ~docv:"T")

(* serve: the discovery/exchange service. The accept loop owns the
   calling domain; SIGTERM/SIGINT flip the stop flag, the loop drains
   in-flight connections, and the per-endpoint counters are logged on
   the way out. *)
let run_serve port domains max_inflight budget_ms fuel seed no_preload journal
    idle_timeout drain_deadline shards =
  let domains =
    match domains with
    | Some n -> max 1 n
    | None -> Smg_parallel.Pool.default_domains ()
  in
  let cfg =
    {
      Smg_serve.Server.port;
      domains;
      max_inflight;
      budget_ms = Option.map int_of_float budget_ms;
      fuel;
      seed;
      preload = not no_preload;
      journal;
      fault = None;
      idle_timeout_s = idle_timeout;
      drain_deadline_s = drain_deadline;
      retry = Smg_robust.Retry.default;
      breaker = Smg_robust.Breaker.default_config;
      shards;
    }
  in
  let srv =
    try Smg_serve.Server.create cfg
    with Unix.Unix_error (e, _, _) ->
      Fmt.epr "error: cannot bind 127.0.0.1:%d: %s@." port
        (Unix.error_message e);
      exit 2
  in
  (* a peer closing mid-response must surface as EPIPE, not kill us *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let stop _ = Smg_serve.Server.stop srv in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  let met = Smg_serve.Server.metrics srv in
  (match journal with
  | Some path ->
      Fmt.pr "mapdisc serve: journal %s (%d scenario(s) recovered in %.1f ms)@."
        path
        (Smg_serve.Metrics.recovered_count met)
        (Smg_serve.Metrics.recovery_ms met)
  | None -> ());
  Fmt.pr "mapdisc serve: listening on 127.0.0.1:%d (%d domain(s), max %d \
          connection(s))@."
    (Smg_serve.Server.port srv) domains max_inflight;
  let drained = Smg_serve.Server.run srv in
  if not drained then
    Fmt.epr
      "mapdisc serve: warning: drain deadline (%.1fs) passed with requests \
       still in flight@."
      drain_deadline;
  Fmt.pr "mapdisc serve: shutdown@.";
  Fmt.pr "%a" Smg_serve.Metrics.pp_summary met

(* chaos: the survival proof. Drives the same seeded workload against
   a clean and a fault-injected in-process server and classifies every
   response against the contract; exit 0 only when nothing hung,
   crashed, or corrupted (and, with --journal, the post-crash restart
   reproduced the reference bytes). *)
let run_chaos seed requests domains journal json =
  let domains =
    match domains with
    | Some n -> max 1 n
    | None -> Smg_parallel.Pool.default_domains ()
  in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let cfg =
    {
      (Smg_serve.Chaos.config ?journal ~seed ~requests ~domains ()) with
      Smg_serve.Chaos.c_log =
        (fun line -> if not json then Fmt.epr "%s@." line);
    }
  in
  let report = Smg_serve.Chaos.run cfg in
  if json then print_string (Smg_serve.Chaos.report_json report)
  else Fmt.pr "%a" Smg_serve.Chaos.pp_report report;
  exit (if Smg_serve.Chaos.ok report then 0 else 1)

let opt_file_arg = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE")

let scenario_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "scenario" ] ~docv:"NAME"
        ~doc:
          "Run a built-in evaluation domain (dblp, mondial, amalgam, 3sdb, \
           ut, hotel, network) over a generated source instead of a FILE")

let size_arg =
  Arg.(
    value & opt int 1000
    & info [ "size" ] ~docv:"N"
        ~doc:
          "Approximate source-instance size in tuples (--scenario mode; \
           spread over the source tables)")

let seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"S"
        ~doc:
          "Seed for generated witness instances (--scenario mode, or a FILE \
           without data blocks); echoed in the --json head so runs are \
           reproducible from their artifact")

(* generate parameter vector — defaults mirror Smg_generate.Params.default *)
let gen_seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"S"
        ~doc:"Master seed; every artifact is a pure function of the vector")

let isa_depth_arg =
  Arg.(
    value & opt int 1
    & info [ "isa-depth" ] ~docv:"D" ~doc:"ISA chain length under each root (0-4)")

let roots_arg =
  Arg.(
    value & opt int 3
    & info [ "roots" ] ~docv:"N" ~doc:"Root entity count (1-8)")

let reify_arg =
  Arg.(
    value & opt int 1
    & info [ "reify" ] ~docv:"N" ~doc:"Reified n-ary relationship count (0-4)")

let partof_arg =
  Arg.(
    value & opt int 1
    & info [ "partof" ] ~docv:"L" ~doc:"partOf chain length off the first root (0-4)")

let attrs_arg =
  Arg.(
    value & opt int 2
    & info [ "attrs" ] ~docv:"K" ~doc:"Plain attributes per class (1-6)")

let density_arg =
  Arg.(
    value & opt float 1.0
    & info [ "corr-density" ] ~docv:"F"
        ~doc:"Fraction of each case's correspondences kept (0.05-1.0)")

let scale_arg =
  Arg.(
    value & opt int 200
    & info [ "scale" ] ~docv:"N"
        ~doc:"Witness-instance size in tuples, spread over the source tables \
              (10-2000000)")

let emit_dsl_arg =
  Arg.(
    value & flag
    & info [ "emit-dsl" ]
        ~doc:"Print the scenario as .smg DSL text (round-trips through the \
              parser) instead of a summary")

let with_data_arg =
  Arg.(
    value & flag
    & info [ "with-data" ]
        ~doc:"Embed the witness source instance as data blocks in the emitted \
              DSL (only sensible at small --scale)")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"PATH" ~doc:"Write the emitted DSL to PATH")

let check_arg =
  Arg.(
    value & opt int 0
    & info [ "check" ] ~docv:"N"
        ~doc:
          "Smoke mode: run N consecutive seeds (starting at --seed) through \
           lowering, population, discovery + dedup, and exchange under a fuel \
           budget; exit 1 on any crash or RIC violation")

let apply_delta_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "apply-delta" ] ~docv:"FILE"
        ~doc:
          "Apply a batch of source inserts/deletes (one $(b,+)/$(b,-) \
           $(i,table(values...)) per line) incrementally: the target is \
           maintained through the delta chase instead of re-chased. With \
           --json the document matches a served POST \
           /scenarios/:name/delta body")

let engine_arg =
  let engine_conv = Arg.enum [ ("fast", `Fast); ("chase", `Chase) ] in
  Arg.(
    value & opt engine_conv `Fast
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Executor: $(b,fast) (hash-join plans, semi-naive re-firing) or \
           $(b,chase) (the naive chase baseline)")

let no_laconic_arg =
  Arg.(
    value & flag
    & info [ "no-laconic" ]
        ~doc:
          "Disable the laconic preparation/sweep of the fast engine (its \
           output then matches the naive chase shape)")

let core_arg =
  Arg.(
    value & flag
    & info [ "core" ]
        ~doc:"Also fold the result to its core (can be slow on large outputs)")

let data_arg =
  Arg.(
    value & flag
    & info [ "data" ]
        ~doc:
          "Print the full target instance (default in FILE mode; --scenario \
           mode prints cardinalities only)")

let budget_ms_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "budget-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock deadline in milliseconds; when it passes, exact \
           searches degrade to approximate fallbacks (discover) or the run \
           stops with a partial result (exchange, exit 3)")

let fuel_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"N"
        ~doc:
          "Deterministic work budget: N units of search/execution work \
           (Steiner DP rows, enumerated paths, scanned tuples, minted \
           nulls); same degradation behaviour as --budget-ms, but \
           reproducible")

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Exit non-zero on any degradation: 2 when diagnostics contain \
           errors, 3 when the budget forced approximate results")

let diagnostics_arg =
  Arg.(
    value & flag
    & info [ "diagnostics" ]
        ~doc:
          "Print the structured diagnostics of the validation and discovery \
           stages (severity, stage, subject, location) plus a summary")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit machine-readable JSON (candidates with tgd/executable forms, \
           provenance, diagnostics, exactness) instead of the human report")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Number of OCaml domains for the parallel sections (per-CSG \
           discovery fan-out, dedup implication checks, the exchange \
           engine's initial scan pass). Defaults to $(b,SMG_DOMAINS) or the \
           runtime's recommended domain count, capped at 8; $(b,1) runs \
           fully sequentially. Discovery output is byte-identical and \
           exchange output homomorphically equivalent for every N")

let shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"K"
        ~doc:
          "Hash-partition count for the exchange stores' membership tables \
           (and the maintained source stores under --apply-delta). Defaults \
           to $(b,SMG_SHARDS), else the pool's domain count. Invisible to \
           the output: a good starting point is shards ≈ domains")

let port_arg =
  Arg.(
    value & opt int 8080
    & info [ "port" ] ~docv:"P"
        ~doc:"Listen on 127.0.0.1:$(docv); $(b,0) picks an ephemeral port")

let max_inflight_arg =
  Arg.(
    value & opt int 64
    & info [ "max-inflight" ] ~docv:"K"
        ~doc:
          "Admission control: with $(docv) connections open, new ones are \
           answered 429 and closed")

let no_preload_arg =
  Arg.(
    value & flag
    & info [ "no-preload" ]
        ~doc:
          "Start with an empty registry instead of preloading the seven \
           built-in evaluation domains")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Crash-safe registry journal: scenario mutations are fsynced to \
           $(docv) before they are acknowledged and replayed on startup, \
           re-warming the recovered scenarios' caches")

let idle_timeout_arg =
  Arg.(
    value & opt float 5.0
    & info [ "idle-timeout" ] ~docv:"S"
        ~doc:
          "Per-connection read/write deadline in seconds; an idle socket is \
           answered 408 and closed")

let drain_deadline_arg =
  Arg.(
    value & opt float 10.0
    & info [ "drain-deadline" ] ~docv:"S"
        ~doc:
          "Bound in seconds on the shutdown drain of in-flight requests; \
           past it stuck work is abandoned to process exit")

let chaos_requests_arg =
  Arg.(
    value & opt int 1000
    & info [ "requests" ] ~docv:"K"
        ~doc:"Workload length (clamped to at least 8)")

let pipeline_arg =
  Arg.(
    value
    & opt (list file) []
    & info [ "pipeline" ] ~docv:"S1.SMG,S2.SMG,..."
        ~doc:
          "Scenario files forming the pipeline, in hop order: each file's \
           target schema is the next file's source")

let invert_arg =
  Arg.(
    value & flag
    & info [ "invert" ]
        ~doc:
          "Append the quasi-inverse of the forward composition as a final \
           hop (reverse migration into a primed copy of the original \
           source); with a single file this makes a round-trip chain")

let verify_flag_arg =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:
          "Materialize the chain hop by hop and in one composed shot, and \
           check the two results are homomorphically equivalent (exit 1 if \
           not)")

let () =
  let discover_cmd =
    Cmd.v
      (Cmd.info "discover" ~doc:"Discover mapping candidates for a scenario")
      Term.(
        const run_discover $ file_arg $ meth_arg $ verbose_arg $ sql_arg
        $ dedup_arg $ budget_ms_arg $ fuel_arg $ strict_arg $ diagnostics_arg
        $ json_arg $ domains_arg)
  in
  let compose_cmd =
    Cmd.v
      (Cmd.info "compose"
         ~doc:
           "Compose a multi-hop pipeline of scenarios into a single mapping \
            (optionally inverted and verified end-to-end)")
      Term.(
        const run_compose $ pipeline_arg $ invert_arg $ verify_flag_arg
        $ size_arg $ seed_arg $ budget_ms_arg $ fuel_arg $ domains_arg)
  in
  let verify_cmd =
    Cmd.v
      (Cmd.info "verify"
         ~doc:
           "Containment/equivalence matrix over both methods' candidates, \
            dedup report, and cross-method redundancy")
      Term.(const run_verify $ file_arg $ limit_arg)
  in
  let match_cmd =
    Cmd.v
      (Cmd.info "match" ~doc:"Propose column correspondences (name matcher)")
      Term.(const run_match $ file_arg $ threshold_arg)
  in
  let show_cmd =
    Cmd.v
      (Cmd.info "show" ~doc:"Parse and pretty-print a scenario file")
      Term.(const run_show $ file_arg)
  in
  let serve_cmd =
    Cmd.v
      (Cmd.info "serve"
         ~doc:
           "Serve discovery and exchange over HTTP, caching parsed \
            scenarios, discovery output, and compiled tgd plans per \
            content hash (PUT /scenarios/:name, then POST \
            /scenarios/:name/{discover,exchange,compose,verify}; GET \
            /metrics for counters)")
      Term.(
        const run_serve $ port_arg $ domains_arg $ max_inflight_arg
        $ budget_ms_arg $ fuel_arg $ seed_arg $ no_preload_arg $ journal_arg
        $ idle_timeout_arg $ drain_deadline_arg $ shards_arg)
  in
  let chaos_cmd =
    Cmd.v
      (Cmd.info "chaos"
         ~doc:
           "Prove the service survives injected faults: drive a seeded \
            workload against a clean and a faulted in-process server and \
            classify every response (byte-identical, retried, breaker shed, \
            sound partial, clean error — never a hang, crash, or corrupt \
            body); with --journal, kill the faulted server and check the \
            restart recovers every scenario byte-identically. Exit 0 only \
            when the contract holds")
      Term.(
        const run_chaos $ seed_arg $ chaos_requests_arg $ domains_arg
        $ journal_arg $ json_arg)
  in
  let generate_cmd =
    Cmd.v
      (Cmd.info "generate"
         ~doc:
           "Synthesize a discovery scenario from a seeded parameter vector \
            (ISA depth, reified relationships, partOf chains, correspondence \
            density, witness scale); --emit-dsl prints valid .smg text, \
            --check N smoke-tests N seeds end-to-end")
      Term.(
        const run_generate $ gen_seed_arg $ isa_depth_arg $ roots_arg
        $ reify_arg $ partof_arg $ attrs_arg $ density_arg $ scale_arg
        $ emit_dsl_arg $ with_data_arg $ out_arg $ check_arg $ fuel_arg)
  in
  let exchange_cmd =
    Cmd.v
      (Cmd.info "exchange"
         ~doc:
           "Discover the best mapping(s) and execute them: over a scenario \
            FILE's data blocks, or over a generated source for a built-in \
            domain (--scenario NAME --size N)")
      Term.(
        const run_exchange $ opt_file_arg $ scenario_arg $ size_arg $ seed_arg
        $ engine_arg $ no_laconic_arg $ core_arg $ data_arg $ budget_ms_arg
        $ fuel_arg $ json_arg $ domains_arg $ shards_arg $ apply_delta_arg)
  in
  let ddl_cmd =
    Cmd.v
      (Cmd.info "ddl" ~doc:"Emit CREATE TABLE statements for both schemas")
      Term.(const run_ddl $ file_arg)
  in
  let dot_cmd =
    Cmd.v
      (Cmd.info "dot" ~doc:"Emit a GraphViz rendering of a side's CM graph")
      Term.(const run_dot $ file_arg $ which_arg)
  in
  let info =
    Cmd.info "mapdisc" ~version:"1.0"
      ~doc:"Semantic schema-mapping discovery (An et al., ICDE 2007)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            discover_cmd;
            verify_cmd;
            match_cmd;
            show_cmd;
            exchange_cmd;
            compose_cmd;
            generate_cmd;
            serve_cmd;
            chaos_cmd;
            ddl_cmd;
            dot_cmd;
          ]))
